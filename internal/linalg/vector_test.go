package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{name: "empty", a: nil, b: nil, want: 0},
		{name: "ones", a: []float64{1, 1, 1}, b: []float64{1, 1, 1}, want: 3},
		{name: "orthogonal", a: []float64{1, 0}, b: []float64{0, 1}, want: 0},
		{name: "negative", a: []float64{1, -2, 3}, b: []float64{4, 5, -6}, want: 4 - 10 - 18},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); got != tt.want {
				t.Errorf("Dot(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	dst := []float64{1, 2, 3}
	Axpy(2, []float64{1, 1, 1}, dst)
	want := []float64{3, 4, 5}
	if !Equal(dst, want, 0) {
		t.Errorf("Axpy = %v, want %v", dst, want)
	}
}

func TestScaleAddSub(t *testing.T) {
	x := []float64{1, -2, 4}
	Scale(0.5, x)
	if !Equal(x, []float64{0.5, -1, 2}, 0) {
		t.Errorf("Scale = %v", x)
	}
	dst := make([]float64, 3)
	Add([]float64{1, 2, 3}, []float64{4, 5, 6}, dst)
	if !Equal(dst, []float64{5, 7, 9}, 0) {
		t.Errorf("Add = %v", dst)
	}
	Sub([]float64{1, 2, 3}, []float64{4, 5, 6}, dst)
	if !Equal(dst, []float64{-3, -3, -3}, 0) {
		t.Errorf("Sub = %v", dst)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if got := Norm1(x); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := Norm2(x); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm2Sq(x); got != 25 {
		t.Errorf("Norm2Sq = %v, want 25", got)
	}
	if got := NormInf(x); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
}

func TestArgMax(t *testing.T) {
	tests := []struct {
		name string
		x    []float64
		want int
	}{
		{name: "empty", x: nil, want: -1},
		{name: "single", x: []float64{5}, want: 0},
		{name: "middle", x: []float64{1, 9, 3}, want: 1},
		{name: "tie first wins", x: []float64{2, 2, 1}, want: 0},
		{name: "negative", x: []float64{-3, -1, -2}, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ArgMax(tt.x); got != tt.want {
				t.Errorf("ArgMax(%v) = %d, want %d", tt.x, got, tt.want)
			}
		})
	}
}

func TestNormalizeL1(t *testing.T) {
	x := []float64{1, -3}
	NormalizeL1(x)
	if math.Abs(Norm1(x)-1) > 1e-12 {
		t.Errorf("after NormalizeL1, Norm1 = %v, want 1", Norm1(x))
	}
	zero := []float64{0, 0}
	NormalizeL1(zero)
	if !Equal(zero, []float64{0, 0}, 0) {
		t.Errorf("NormalizeL1 of zero vector changed it: %v", zero)
	}
}

// Property: the ball projection always lands inside the ball and is the
// identity for vectors already inside. This is the invariant the SGD update
// Eq. (3) relies on.
func TestProjectBallProperty(t *testing.T) {
	f := func(raw []float64, rSeed uint8) bool {
		r := 0.5 + float64(rSeed%50) // radius in [0.5, 49.5]
		w := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			w[i] = math.Mod(v, 1e6)
		}
		before := Copy(w)
		ProjectBall(w, r)
		if Norm2(w) > r*(1+1e-9) {
			return false
		}
		if Norm2(before) <= r && !Equal(before, w, 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProjectBallDisabled(t *testing.T) {
	w := []float64{100, 100}
	ProjectBall(w, 0)
	if !Equal(w, []float64{100, 100}, 0) {
		t.Errorf("ProjectBall with r=0 should be identity, got %v", w)
	}
}

func TestEqual(t *testing.T) {
	if Equal([]float64{1}, []float64{1, 2}, 0) {
		t.Error("Equal should be false for different lengths")
	}
	if !Equal([]float64{1, 2}, []float64{1.0005, 2}, 1e-3) {
		t.Error("Equal should be true within tolerance")
	}
}

func TestCopyZero(t *testing.T) {
	src := []float64{1, 2}
	dst := Copy(src)
	dst[0] = 9
	if src[0] != 1 {
		t.Error("Copy must not alias the source")
	}
	Zero(src)
	if !Equal(src, []float64{0, 0}, 0) {
		t.Errorf("Zero = %v", src)
	}
}
