package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSoftmaxUniform(t *testing.T) {
	scores := []float64{0, 0, 0, 0}
	dst := make([]float64, 4)
	Softmax(scores, dst)
	for i, p := range dst {
		if math.Abs(p-0.25) > 1e-12 {
			t.Errorf("dst[%d] = %v, want 0.25", i, p)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	// Large scores must not overflow.
	scores := []float64{1000, 1001, 999}
	dst := make([]float64, 3)
	Softmax(scores, dst)
	var sum float64
	for _, p := range dst {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("softmax produced non-finite value: %v", dst)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sums to %v, want 1", sum)
	}
	if ArgMax(dst) != 1 {
		t.Errorf("softmax argmax = %d, want 1", ArgMax(dst))
	}
}

// Property: softmax output is a probability vector for arbitrary finite input.
func TestSoftmaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		scores := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			scores[i] = math.Mod(v, 500)
		}
		dst := make([]float64, len(scores))
		Softmax(scores, dst)
		var sum float64
		for _, p := range dst {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLogSumExp(t *testing.T) {
	tests := []struct {
		name string
		x    []float64
		want float64
	}{
		{name: "empty", x: nil, want: math.Inf(-1)},
		{name: "single", x: []float64{3}, want: 3},
		{name: "two equal", x: []float64{0, 0}, want: math.Log(2)},
		{name: "large", x: []float64{1000, 1000}, want: 1000 + math.Log(2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := LogSumExp(tt.x)
			if math.IsInf(tt.want, -1) {
				if !math.IsInf(got, -1) {
					t.Errorf("LogSumExp = %v, want -Inf", got)
				}
				return
			}
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("LogSumExp(%v) = %v, want %v", tt.x, got, tt.want)
			}
		})
	}
}

// LogSumExp must agree with softmax: softmax_i = exp(x_i - LSE(x)).
func TestLogSumExpSoftmaxConsistency(t *testing.T) {
	x := []float64{0.3, -1.2, 2.5, 0}
	lse := LogSumExp(x)
	dst := make([]float64, len(x))
	Softmax(x, dst)
	for i := range x {
		want := math.Exp(x[i] - lse)
		if math.Abs(dst[i]-want) > 1e-12 {
			t.Errorf("softmax[%d] = %v, exp(x-lse) = %v", i, dst[i], want)
		}
	}
}
