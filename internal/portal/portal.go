// Package portal implements the Web portal of the paper's prototype
// (Section V-A): a page where prospective participants can inspect an
// ongoing crowd-learning task — its objective, what sensory data and
// labels are collected, which learning algorithm runs, and how the privacy
// mechanisms work — together with timely, differentially private
// statistics (error rate, label distribution). The paper built this with
// Django and Matplotlib; this implementation uses html/template and
// text bars, keeping the repository stdlib-only.
package portal

import (
	"fmt"
	"html/template"
	"net/http"
	"strings"
	"sync"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/hub"
)

// TaskInfo describes the crowd-learning task to prospective participants —
// the transparency details the paper lists: objective, sensory data
// collected, labels collected, and learning algorithm used. It is the
// hub's task metadata type; tasks hosted on a hub carry it directly.
type TaskInfo = hub.TaskInfo

// historyPoint is one observed (iteration, error-estimate) pair.
type historyPoint struct {
	Iteration int     `json:"iteration"`
	Error     float64 `json:"error"`
}

// Portal serves the task page for one server.
type Portal struct {
	server *core.Server
	info   TaskInfo

	mu      sync.Mutex
	history []historyPoint
}

var _ http.Handler = (*Portal)(nil)

// maxHistory bounds the retained error-history points.
const maxHistory = 500

// New creates a portal for the given server and task description.
func New(server *core.Server, info TaskInfo) *Portal {
	return &Portal{server: server, info: info}
}

// ServeHTTP implements http.Handler: "/" renders the task page.
func (p *Portal) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	data := p.snapshot()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := pageTemplate.Execute(w, data); err != nil {
		// Headers already sent; nothing further to do.
		return
	}
}

// pageData is the template's view model.
type pageData struct {
	Info          TaskInfo
	TotalEps      float64
	PrivacyOff    bool
	Iteration     int
	Stopped       bool
	HasEstimates  bool
	ErrorEstimate float64
	Prior         []priorRow
	History       []historyPoint
	Sparkline     string
}

type priorRow struct {
	Label string
	Value float64
	Bar   string
}

// snapshot reads the server's current statistics, records a history point,
// and builds the view model.
func (p *Portal) snapshot() pageData {
	data := pageData{
		Info:      p.info,
		Iteration: p.server.Iteration(),
		Stopped:   p.server.Stopped(),
	}
	classes := len(p.info.Labels)
	if classes == 0 {
		classes = 1
	}
	total := p.info.Budget.Total(classes)
	data.TotalEps = float64(total)
	data.PrivacyOff = !total.Enabled()

	if est, ok := p.server.ErrEstimate(); ok {
		data.HasEstimates = true
		data.ErrorEstimate = est
		p.mu.Lock()
		if n := len(p.history); n == 0 || p.history[n-1].Iteration != data.Iteration {
			p.history = append(p.history, historyPoint{Iteration: data.Iteration, Error: est})
			if len(p.history) > maxHistory {
				p.history = p.history[len(p.history)-maxHistory:]
			}
		}
		data.History = append([]historyPoint(nil), p.history...)
		p.mu.Unlock()
		data.Sparkline = sparkline(data.History)
	}
	if prior, ok := p.server.PriorEstimate(); ok {
		for k, v := range prior {
			label := fmt.Sprintf("class %d", k)
			if k < len(p.info.Labels) {
				label = p.info.Labels[k]
			}
			data.Prior = append(data.Prior, priorRow{Label: label, Value: v, Bar: bar(v)})
		}
	}
	return data
}

// History returns a copy of the recorded error history.
func (p *Portal) History() []struct {
	Iteration int
	Error     float64
} {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]struct {
		Iteration int
		Error     float64
	}, len(p.history))
	for i, h := range p.history {
		out[i] = struct {
			Iteration int
			Error     float64
		}{h.Iteration, h.Error}
	}
	return out
}

// bar renders a 0..1 value as a 20-cell text bar. Values outside [0,1]
// (possible: sanitized counts can push estimates slightly negative) are
// clamped.
func bar(v float64) string {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	filled := int(v*20 + 0.5)
	return strings.Repeat("█", filled) + strings.Repeat("░", 20-filled)
}

// sparkline renders the error history as a compact block-character series.
func sparkline(points []historyPoint) string {
	if len(points) == 0 {
		return ""
	}
	const levels = "▁▂▃▄▅▆▇█"
	lo, hi := points[0].Error, points[0].Error
	for _, p := range points[1:] {
		if p.Error < lo {
			lo = p.Error
		}
		if p.Error > hi {
			hi = p.Error
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, p := range points {
		idx := 0
		if span > 0 {
			idx = int((p.Error - lo) / span * float64(len([]rune(levels))-1))
		}
		b.WriteRune([]rune(levels)[idx])
	}
	return b.String()
}

var pageTemplate = template.Must(template.New("portal").Parse(`<!DOCTYPE html>
<html>
<head><title>Crowd-ML: {{.Info.Name}}</title>
<style>
 body { font-family: sans-serif; max-width: 48rem; margin: 2rem auto; }
 .bar { font-family: monospace; }
 .muted { color: #666; }
 dt { font-weight: bold; margin-top: .6rem; }
</style>
</head>
<body>
<h1>{{.Info.Name}}</h1>
{{if .Stopped}}<p><strong>This task has completed.</strong></p>{{end}}

<h2>About this task</h2>
<dl>
 <dt>Objective</dt><dd>{{.Info.Objective}}</dd>
 <dt>Sensory data collected</dt><dd>{{.Info.SensorData}}</dd>
 <dt>Labels collected</dt><dd>{{range $i, $l := .Info.Labels}}{{if $i}}, {{end}}{{$l}}{{end}}</dd>
 <dt>Learning algorithm</dt><dd>{{.Info.Algorithm}}</dd>
</dl>

<h2>Your privacy</h2>
{{if .PrivacyOff}}
<p class="muted">This task runs without differential privacy (ε⁻¹ = 0).</p>
{{else}}
<p>Everything your device sends is sanitized <em>on the device</em> before
transmission: gradients receive Laplace noise and progress counters receive
discrete Laplace noise. Each contribution is
<strong>ε = {{printf "%.3g" .TotalEps}}</strong> differentially private —
even an adversary observing all network traffic learns almost nothing about
any single sample of yours.</p>
{{end}}

<h2>Live statistics (differentially private)</h2>
<p>Server iteration: {{.Iteration}}</p>
{{if .HasEstimates}}
<p>Current error estimate: {{printf "%.3f" .ErrorEstimate}}</p>
<p class="bar">error history: {{.Sparkline}}</p>
<h3>Label distribution</h3>
<table>
{{range .Prior}}<tr><td>{{.Label}}</td><td class="bar">{{.Bar}}</td><td>{{printf "%.2f" .Value}}</td></tr>
{{end}}</table>
{{else}}
<p class="muted">No contributions received yet.</p>
{{end}}
</body>
</html>
`))
