package portal

import (
	"html/template"
	"net/http"
	"sync"

	"github.com/crowdml/crowdml/internal/hub"
)

// Index is the multi-task Web portal of the paper's Section V-A: the
// front page lists every crowd-learning task hosted on the hub so
// prospective participants can browse and pick one; each task links to
// its full transparency page (objective, collected data, algorithm,
// privacy budget, live DP statistics).
//
// Routes (relative to wherever the Index is mounted):
//
//	GET /              — task listing
//	GET /tasks/{task}  — one task's detail page
type Index struct {
	hub *hub.Hub
	mux *http.ServeMux

	mu    sync.Mutex
	pages map[string]*Portal // lazily created per-task detail pages
}

var _ http.Handler = (*Index)(nil)

// NewIndex builds the portal index for a hub.
func NewIndex(h *hub.Hub) *Index {
	idx := &Index{hub: h, mux: http.NewServeMux(), pages: make(map[string]*Portal)}
	idx.mux.HandleFunc("GET /{$}", idx.handleIndex)
	idx.mux.HandleFunc("GET /tasks/{task}", idx.handleTask)
	return idx
}

// ServeHTTP implements http.Handler.
func (i *Index) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	i.mux.ServeHTTP(w, r)
}

// indexRow is one task entry in the listing's view model.
type indexRow struct {
	ID            string
	Name          string
	Algorithm     string
	Iteration     int
	Stopped       bool
	HasEstimate   bool
	ErrorEstimate float64
}

func (i *Index) handleIndex(w http.ResponseWriter, r *http.Request) {
	tasks := i.hub.Tasks()
	// Prune detail pages for tasks that have been closed, so task churn
	// does not grow the page cache without bound.
	live := make(map[string]bool, len(tasks))
	for _, t := range tasks {
		live[t.ID()] = true
	}
	i.mu.Lock()
	for id := range i.pages {
		if !live[id] {
			delete(i.pages, id)
		}
	}
	i.mu.Unlock()

	var rows []indexRow
	for _, t := range tasks {
		row := indexRow{
			ID:        t.ID(),
			Name:      t.Info().Name,
			Algorithm: t.Info().Algorithm,
			Iteration: t.Server().Iteration(),
			Stopped:   t.Server().Stopped(),
		}
		if est, ok := t.Server().ErrEstimate(); ok {
			row.HasEstimate = true
			row.ErrorEstimate = est
		}
		rows = append(rows, row)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTemplate.Execute(w, rows); err != nil {
		return
	}
}

func (i *Index) handleTask(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("task")
	t, ok := i.hub.Task(id)
	if !ok {
		i.mu.Lock()
		delete(i.pages, id) // the task may have been closed
		i.mu.Unlock()
		http.Error(w, "task not found", http.StatusNotFound)
		return
	}
	i.mu.Lock()
	page, ok := i.pages[id]
	if !ok || page.server != t.Server() {
		page = New(t.Server(), t.Info())
		i.pages[id] = page
	}
	i.mu.Unlock()
	page.ServeHTTP(w, r)
}

var indexTemplate = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html>
<head><title>Crowd-ML tasks</title>
<style>
 body { font-family: sans-serif; max-width: 48rem; margin: 2rem auto; }
 table { border-collapse: collapse; width: 100%; }
 td, th { text-align: left; padding: .3rem .8rem .3rem 0; border-bottom: 1px solid #ddd; }
 .muted { color: #666; }
</style>
</head>
<body>
<h1>Crowd-ML learning tasks</h1>
{{if .}}
<table>
<tr><th>Task</th><th>Algorithm</th><th>Iteration</th><th>Error est.</th><th>Status</th></tr>
{{range .}}<tr>
 <td><a href="tasks/{{.ID}}">{{.Name}}</a></td>
 <td>{{.Algorithm}}</td>
 <td>{{.Iteration}}</td>
 <td>{{if .HasEstimate}}{{printf "%.3f" .ErrorEstimate}}{{else}}–{{end}}</td>
 <td>{{if .Stopped}}completed{{else}}recruiting{{end}}</td>
</tr>
{{end}}</table>
{{else}}
<p class="muted">No tasks are currently hosted.</p>
{{end}}
</body>
</html>
`))
