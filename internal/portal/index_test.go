package portal

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/hub"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
)

func newTestHub(t *testing.T) *hub.Hub {
	t.Helper()
	h := hub.New()
	ctx := context.Background()
	for _, id := range []string{"activity", "thermostat"} {
		_, err := h.CreateTask(ctx, id, core.ServerConfig{
			Model:   model.NewLogisticRegression(2, 2),
			Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
		}, hub.WithInfo(hub.TaskInfo{
			Name:      "Task " + id,
			Objective: "objective of " + id,
			Labels:    []string{"a", "b"},
			Algorithm: "logreg on " + id,
		}))
		if err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestIndexListsAllTasks(t *testing.T) {
	h := newTestHub(t)
	ts := httptest.NewServer(NewIndex(h))
	defer ts.Close()
	code, page := get(t, ts, "/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		"Task activity", "Task thermostat",
		`href="tasks/activity"`, `href="tasks/thermostat"`,
		"recruiting",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestIndexEmptyHub(t *testing.T) {
	ts := httptest.NewServer(NewIndex(hub.New()))
	defer ts.Close()
	code, page := get(t, ts, "/")
	if code != http.StatusOK || !strings.Contains(page, "No tasks") {
		t.Errorf("empty hub index: status %d, page %q", code, page)
	}
}

func TestIndexTaskDetailPage(t *testing.T) {
	h := newTestHub(t)
	ts := httptest.NewServer(NewIndex(h))
	defer ts.Close()
	code, page := get(t, ts, "/tasks/activity")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"Task activity", "objective of activity", "logreg on activity"} {
		if !strings.Contains(page, want) {
			t.Errorf("detail page missing %q", want)
		}
	}
	if code, _ := get(t, ts, "/tasks/ghost"); code != http.StatusNotFound {
		t.Errorf("unknown task status = %d, want 404", code)
	}
}

func TestIndexDetailDropsClosedTasks(t *testing.T) {
	h := newTestHub(t)
	ts := httptest.NewServer(NewIndex(h))
	defer ts.Close()
	if code, _ := get(t, ts, "/tasks/activity"); code != http.StatusOK {
		t.Fatal("warm-up fetch failed")
	}
	if err := h.CloseTask(context.Background(), "activity"); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, ts, "/tasks/activity"); code != http.StatusNotFound {
		t.Errorf("closed task detail status = %d, want 404", code)
	}
	// The listing no longer shows it either.
	_, page := get(t, ts, "/")
	if strings.Contains(page, "Task activity") {
		t.Error("closed task still listed")
	}
}
