package portal

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/privacy"
)

func testSetup(t *testing.T, budget privacy.Budget) (*core.Server, *Portal) {
	t.Helper()
	srv, err := core.NewServer(core.ServerConfig{
		Model:   model.NewLogisticRegression(3, 4),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := New(srv, TaskInfo{
		Name:       "Activity recognition study",
		Objective:  "Learn user activities from motion",
		SensorData: "accelerometer magnitudes, FFT on device",
		Labels:     []string{"Still", "On Foot", "In Vehicle"},
		Algorithm:  "multiclass logistic regression via private SGD",
		Budget:     budget,
	})
	return srv, p
}

func fetch(t *testing.T, p *Portal) string {
	t.Helper()
	ts := httptest.NewServer(p)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestPortalRendersTaskDetails(t *testing.T) {
	_, p := testSetup(t, privacy.Budget{Gradient: 1})
	page := fetch(t, p)
	for _, want := range []string{
		"Activity recognition study",
		"Learn user activities",
		"accelerometer",
		"Still", "On Foot", "In Vehicle",
		"logistic regression",
		"differentially private",
		"No contributions received yet",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

func TestPortalShowsComposedEpsilon(t *testing.T) {
	_, p := testSetup(t, privacy.Budget{Gradient: 1, ErrCount: 0.5, LabelCount: 0.1})
	page := fetch(t, p)
	// ε = 1 + 0.5 + 3·0.1 = 1.8
	if !strings.Contains(page, "1.8") {
		t.Errorf("page missing composed epsilon 1.8:\n%s", page)
	}
}

func TestPortalPrivacyOffNotice(t *testing.T) {
	_, p := testSetup(t, privacy.Budget{})
	page := fetch(t, p)
	if !strings.Contains(page, "without differential privacy") {
		t.Error("page should state that privacy is off")
	}
}

func TestPortalShowsStatsAfterCheckins(t *testing.T) {
	srv, p := testSetup(t, privacy.Budget{Gradient: 1})
	ctx := context.Background()
	token, _ := srv.RegisterDevice(ctx, "d1")
	req := &core.CheckinRequest{
		Grad: make([]float64, 12), NumSamples: 10, ErrCount: 3,
		LabelCounts: []int{5, 3, 2},
	}
	if err := srv.Checkin(ctx, "d1", token, req); err != nil {
		t.Fatal(err)
	}
	page := fetch(t, p)
	if !strings.Contains(page, "0.300") {
		t.Errorf("page missing error estimate 0.300:\n%s", page)
	}
	if !strings.Contains(page, "Still") || !strings.Contains(page, "0.50") {
		t.Error("page missing label distribution")
	}
	if !strings.Contains(page, "█") {
		t.Error("page missing distribution bars")
	}
}

func TestPortalHistoryAccumulates(t *testing.T) {
	srv, p := testSetup(t, privacy.Budget{Gradient: 1})
	ctx := context.Background()
	token, _ := srv.RegisterDevice(ctx, "d1")
	for i := 0; i < 3; i++ {
		req := &core.CheckinRequest{
			Grad: make([]float64, 12), NumSamples: 10, ErrCount: 3 - i,
			LabelCounts: []int{5, 3, 2},
		}
		if err := srv.Checkin(ctx, "d1", token, req); err != nil {
			t.Fatal(err)
		}
		fetch(t, p)
	}
	h := p.History()
	if len(h) != 3 {
		t.Fatalf("history has %d points, want 3", len(h))
	}
	if h[2].Error >= h[0].Error {
		t.Errorf("history not tracking improvement: %+v", h)
	}
	// Re-render without new checkins: no duplicate point.
	fetch(t, p)
	if len(p.History()) != 3 {
		t.Error("duplicate history point for unchanged iteration")
	}
}

func TestPortalRejectsNonGET(t *testing.T) {
	_, p := testSetup(t, privacy.Budget{})
	ts := httptest.NewServer(p)
	defer ts.Close()
	resp, err := http.Post(ts.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d, want 405", resp.StatusCode)
	}
}

func TestBarClamps(t *testing.T) {
	if got := bar(-0.5); !strings.Contains(got, "░") || strings.Contains(got, "█") {
		t.Errorf("bar(-0.5) = %q", got)
	}
	if got := bar(2); strings.Contains(got, "░") {
		t.Errorf("bar(2) = %q, want fully filled", got)
	}
}

func TestSparkline(t *testing.T) {
	if sparkline(nil) != "" {
		t.Error("empty history should give empty sparkline")
	}
	pts := []historyPoint{{1, 0.9}, {2, 0.5}, {3, 0.1}}
	s := sparkline(pts)
	runes := []rune(s)
	if len(runes) != 3 {
		t.Fatalf("sparkline length %d, want 3", len(runes))
	}
	if runes[0] <= runes[2] {
		t.Errorf("sparkline should descend with error: %q", s)
	}
	// Flat history: all same level, no panic.
	flat := sparkline([]historyPoint{{1, 0.5}, {2, 0.5}})
	if len([]rune(flat)) != 2 {
		t.Errorf("flat sparkline = %q", flat)
	}
}
