// Package activity simulates the real-environment experiment of
// Section V-B: activity recognition from tri-axial accelerometer traces on
// smartphones. The paper's setup (7 Android phones, 20 Hz accelerometers,
// Google's activity-recognition service for ground truth) is replaced by a
// synthetic signal generator with class-conditional spectral signatures:
//
//	Still:     gravity plus small sensor noise;
//	OnFoot:    a ~2 Hz step oscillation with a harmonic, typical of walking;
//	InVehicle: low-frequency body sway plus a high-frequency engine line.
//
// The feature pipeline is the paper's: acceleration magnitudes over 3.2 s
// (64-sample) windows → 64-bin FFT magnitude spectrum → L1 normalization.
// Sampling is label-change triggered, matching the paper's trick of keeping
// only samples whose label differs from the previous one.
package activity

import (
	"fmt"
	"math"

	"github.com/crowdml/crowdml/internal/features"
	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/rng"
)

// Activity labels (3-class task of Section V-B).
const (
	Still = iota
	OnFoot
	InVehicle

	// NumClasses is the number of activity classes.
	NumClasses = 3
)

// Names maps labels to the paper's activity names.
var Names = [NumClasses]string{"Still", "On Foot", "In Vehicle"}

// Pipeline constants from Section V-B.
const (
	// SampleRateHz is the accelerometer sampling rate.
	SampleRateHz = 20
	// WindowSize is the 3.2 s window at 20 Hz: 64 samples, giving the
	// paper's 64-bin FFT.
	WindowSize = 64
	// FeatureDim is the feature dimensionality (64 spectral bins).
	FeatureDim = WindowSize
)

// Generator produces labeled activity windows for one simulated device.
// It is deterministic given its seed; separate devices should use
// separate seeds.
type Generator struct {
	r    *rng.RNG
	last int // previous activity label, for label-change-triggered sampling
	// gravity is the baseline |a| in m/s².
	gravity float64
}

// NewGenerator returns a generator seeded for one device.
func NewGenerator(seed uint64) *Generator {
	return &Generator{r: rng.New(seed), last: -1, gravity: 9.81}
}

// rawWindow synthesizes one WindowSize-sample magnitude trace for the
// given activity.
func (g *Generator) rawWindow(label int) []float64 {
	w := make([]float64, WindowSize)
	phase := g.r.Uniform(0, 2*math.Pi)
	phase2 := g.r.Uniform(0, 2*math.Pi)
	for i := range w {
		t := float64(i) / SampleRateHz
		switch label {
		case Still:
			w[i] = g.gravity + g.r.Normal(0, 0.05)
		case OnFoot:
			// ~2 Hz stride with a 4 Hz harmonic and substantial jitter.
			step := 2.0 + 0.2*math.Sin(phase2)
			w[i] = g.gravity +
				2.5*math.Sin(2*math.Pi*step*t+phase) +
				1.0*math.Sin(2*math.Pi*2*step*t+phase2) +
				g.r.Normal(0, 0.5)
		case InVehicle:
			// Low-frequency sway plus an ~8 Hz engine/road vibration line.
			w[i] = g.gravity +
				0.8*math.Sin(2*math.Pi*0.7*t+phase) +
				0.4*math.Sin(2*math.Pi*8.3*t+phase2) +
				g.r.Normal(0, 0.25)
		}
	}
	return w
}

// Features converts a raw magnitude window into the paper's feature vector:
// de-meaned 64-bin FFT magnitude spectrum, L1 normalized. De-meaning removes
// the gravity DC component that would otherwise dominate every class's
// spectrum identically.
func Features(window []float64) ([]float64, error) {
	if len(window) != WindowSize {
		return nil, fmt.Errorf("activity: window length %d, want %d", len(window), WindowSize)
	}
	centered := make([]float64, WindowSize)
	mean := linalg.Mean(window)
	for i, v := range window {
		centered[i] = v - mean
	}
	mag, err := features.MagnitudeSpectrum(centered)
	if err != nil {
		return nil, err
	}
	linalg.NormalizeL1(mag)
	return mag, nil
}

// Next produces the next labeled sample. Labels follow the paper's
// label-change-triggered collection: each emitted sample's activity differs
// from the previous one, which both diversifies labels and mimics the
// effective ~1/352 Hz sample rate of the deployment.
func (g *Generator) Next() (model.Sample, error) {
	label := g.r.Intn(NumClasses)
	if label == g.last {
		label = (label + 1 + g.r.Intn(NumClasses-1)) % NumClasses
	}
	g.last = label
	x, err := Features(g.rawWindow(label))
	if err != nil {
		return model.Sample{}, err
	}
	return model.Sample{X: x, Y: label}, nil
}

// Stream produces n consecutive samples from the generator.
func (g *Generator) Stream(n int) ([]model.Sample, error) {
	out := make([]model.Sample, n)
	for i := range out {
		s, err := g.Next()
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}
