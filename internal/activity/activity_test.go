package activity

import (
	"math"
	"testing"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
)

func TestNextProducesValidSamples(t *testing.T) {
	g := NewGenerator(1)
	for i := 0; i < 50; i++ {
		s, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if len(s.X) != FeatureDim {
			t.Fatalf("feature dim %d, want %d", len(s.X), FeatureDim)
		}
		if s.Y < 0 || s.Y >= NumClasses {
			t.Fatalf("label %d", s.Y)
		}
		if n := linalg.Norm1(s.X); math.Abs(n-1) > 1e-9 {
			t.Fatalf("‖x‖₁ = %v, want 1", n)
		}
	}
}

func TestLabelChangeTriggered(t *testing.T) {
	g := NewGenerator(2)
	prev := -1
	for i := 0; i < 200; i++ {
		s, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if s.Y == prev {
			t.Fatalf("sample %d repeated label %d", i, s.Y)
		}
		prev = s.Y
	}
}

func TestStreamLengthAndDeterminism(t *testing.T) {
	a, err := NewGenerator(7).Stream(20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(7).Stream(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 20 {
		t.Fatalf("length %d", len(a))
	}
	for i := range a {
		if a[i].Y != b[i].Y || !linalg.Equal(a[i].X, b[i].X, 0) {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestFeaturesRejectsBadWindow(t *testing.T) {
	if _, err := Features(make([]float64, 10)); err == nil {
		t.Error("expected error for short window")
	}
}

func TestClassesAreSpectrallyDistinct(t *testing.T) {
	// The mean feature vectors of different activities must differ far more
	// than within-activity variation — otherwise Fig. 3's fast convergence
	// could not reproduce.
	g := NewGenerator(3)
	means := make([][]float64, NumClasses)
	const per = 200
	for c := 0; c < NumClasses; c++ {
		mu := make([]float64, FeatureDim)
		for i := 0; i < per; i++ {
			x, err := Features(g.rawWindow(c))
			if err != nil {
				t.Fatal(err)
			}
			linalg.Axpy(1, x, mu)
		}
		linalg.Scale(1.0/per, mu)
		means[c] = mu
	}
	for a := 0; a < NumClasses; a++ {
		for b := a + 1; b < NumClasses; b++ {
			diff := make([]float64, FeatureDim)
			linalg.Sub(means[a], means[b], diff)
			if linalg.Norm1(diff) < 0.1 {
				t.Errorf("classes %s and %s spectrally similar (L1 gap %v)",
					Names[a], Names[b], linalg.Norm1(diff))
			}
		}
	}
}

// The 3-class task must be learnable with only tens of samples — the
// paper's Fig. 3 converges after ~50 samples across 7 devices.
func TestActivityTaskLearnableQuickly(t *testing.T) {
	g := NewGenerator(4)
	m := model.NewLogisticRegression(NumClasses, FeatureDim)
	w := model.NewParams(m)
	train, err := g.Stream(100)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range train {
		grad := model.NewParams(m)
		m.AddGradient(w, grad, s)
		// L1-normalized spectra have per-element magnitude ~1/64, so the
		// effective gradient scale is small; c ≈ 20 in η(t) = c/√t is the
		// well-tuned setting (cf. Fig. 3's learning-rate sweep).
		w.AddScaled(-20.0/math.Sqrt(float64(i+1)), grad)
	}
	test, err := g.Stream(200)
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for _, s := range test {
		if m.Misclassified(w, s) {
			errs++
		}
	}
	if frac := float64(errs) / 200; frac > 0.15 {
		t.Errorf("activity error after 100 samples = %v, want < 0.15", frac)
	}
}

func TestNamesCoverClasses(t *testing.T) {
	if len(Names) != NumClasses {
		t.Fatal("Names/NumClasses mismatch")
	}
	for _, n := range Names {
		if n == "" {
			t.Error("empty class name")
		}
	}
}
