package shard

import (
	"context"
	"fmt"
	"time"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/hub"
	"github.com/crowdml/crowdml/internal/linalg"
)

// mergedView is one published combination of the member snapshots.
// Immutable after publication; readers load it with a single atomic
// pointer read (the same copy-on-write discipline core.Server uses for
// its own checkout snapshot).
type mergedView struct {
	// params is the checkin-count-weighted average of the member
	// parameter vectors (uniform before any checkin).
	params []float64
	// iteration is Σ member snapshot versions — the logical task's
	// iteration counter. Monotone: each component is monotone.
	iteration int
	// componentIter[k] is the iteration member k contributed, for
	// per-shard merge-lag reporting.
	componentIter []int
	// done reports that EVERY member has met its stopping criteria.
	done bool
	// Summed raw crowd counters across members (Eq. 14 numerators and
	// denominator), so ratio estimates compose exactly.
	totalNs, totalNe int64
	totalNky         []int64
}

// LogicalID implements hub.ShardRouter.
func (g *Group) LogicalID() string { return g.id }

// Info implements hub.ShardRouter: the logical task's portal metadata.
func (g *Group) Info() hub.TaskInfo { return g.info }

// MemberIDs implements hub.ShardRouter: member task IDs in shard order.
func (g *Group) MemberIDs() []string {
	out := make([]string, len(g.members))
	for k, t := range g.members {
		out[k] = t.ID()
	}
	return out
}

// MapVersion implements hub.ShardRouter.
func (g *Group) MapVersion() int { return g.smap.Version() }

// RouteDevice implements hub.ShardRouter: the member task ID owning the
// device. Pure placement — no counters move; the operation methods
// below count what they serve.
func (g *Group) RouteDevice(deviceID string) string {
	return g.members[g.smap.Shard(deviceID)].ID()
}

// Checkout implements hub.ShardRouter (and the device-side
// core.Transport): authenticate against the device's owning member —
// the shard that holds its credentials — then serve the merged model.
// The read is lock-free: one atomic load of the published view plus the
// per-caller copy every checkout pays.
func (g *Group) Checkout(ctx context.Context, deviceID, token string) (*core.CheckoutResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := g.smap.Shard(deviceID)
	if err := g.members[k].Server().Authenticate(ctx, deviceID, token); err != nil {
		return nil, err
	}
	g.m.routedCheckout(k)
	mv := g.merged.Load()
	return &core.CheckoutResponse{
		Params:  linalg.Copy(mv.params), // callers own the returned slice
		Version: mv.iteration,
		Done:    mv.done,
	}, nil
}

// Checkin implements hub.ShardRouter (and core.Transport): apply the
// delta on the device's owning member. The echoed Version is a merged
// iteration (Σ shards) while the member's staleness accounting is
// shard-local, so a Version ahead of the member's own counter is
// clamped to it — staleness then measures the member's queue delay
// instead of going negative. The clamp happens before the member
// journals the request, so crash replay reapplies the identical entry.
func (g *Group) Checkin(ctx context.Context, deviceID, token string, req *core.CheckinRequest) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	k := g.smap.Shard(deviceID)
	t := g.members[k]
	if t.ReadOnly() {
		// A tier built over follower-role members (a sharded read replica)
		// rejects writes exactly like a single follower does; the HTTP
		// layer translates this to 409 + the member's leader hint.
		return fmt.Errorf("shard %q replicates %s: %w", t.ID(), t.LeaderURL(), core.ErrStopped)
	}
	srv := t.Server()
	if local := srv.Iteration(); req.Version > local {
		req.Version = local
	}
	g.m.routedCheckin(k)
	return srv.Checkin(ctx, deviceID, token, req)
}

// Register implements hub.ShardRouter: enroll the device on its owning
// member, which from then on holds its credential and counters.
func (g *Group) Register(ctx context.Context, deviceID string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	k := g.smap.Shard(deviceID)
	t := g.members[k]
	if t.ReadOnly() {
		return "", fmt.Errorf("shard %q replicates %s: %w", t.ID(), t.LeaderURL(), core.ErrStopped)
	}
	g.m.routedRegister(k)
	return t.Server().RegisterDevice(ctx, deviceID)
}

// MergedStats implements hub.ShardRouter: the logical task's progress
// view, derived from the published merged view's summed raw counters.
func (g *Group) MergedStats() hub.ShardedStats {
	mv := g.merged.Load()
	classes, dim := g.members[0].Server().ModelShape()
	s := hub.ShardedStats{
		Iteration:  mv.iteration,
		Stopped:    mv.done,
		Classes:    classes,
		Dim:        dim,
		Shards:     g.smap.N(),
		MapVersion: g.smap.Version(),
	}
	if mv.totalNs > 0 {
		s.ErrorEstimate = float64(mv.totalNe) / float64(mv.totalNs)
		s.HasError = true
		s.PriorEstimate = make([]float64, len(mv.totalNky))
		for k, n := range mv.totalNky {
			s.PriorEstimate[k] = float64(n) / float64(mv.totalNs)
		}
	}
	return s
}

// ShardRows implements hub.ShardRouter: one live health row per member.
func (g *Group) ShardRows() []hub.ShardHealthRow {
	mv := g.merged.Load()
	rows := make([]hub.ShardHealthRow, len(g.members))
	for k, t := range g.members {
		srv := t.Server()
		row := hub.ShardHealthRow{
			ID:        t.ID(),
			Iteration: srv.Iteration(),
			Stopped:   srv.Stopped(),
			Ready:     true,
		}
		if lag := row.Iteration - mv.componentIter[k]; lag > 0 {
			row.MergeLag = lag
		}
		if t.ReadOnly() {
			// Follower-role member: same readiness rule as a standalone
			// follower (ready while tailing or retrying with served state).
			st, ok := t.ReplicaStatus()
			if !ok {
				row.Ready = false
			} else {
				row.ReplicaState = st.State
				row.Ready = st.State == hub.ReplicaTailing || st.State == hub.ReplicaRetrying
			}
		}
		rows[k] = row
	}
	return rows
}

// merge rebuilds and publishes the merged view: pull every member's
// zero-copy snapshot, average the parameter vectors weighted by each
// shard's checkin count (its snapshot version — paper-style model
// averaging over unevenly loaded shards), and sum the raw crowd
// counters. Called by the merger goroutine, once synchronously from
// New, and by explicit Merge callers; mergeMu serializes builds so the
// published iteration never moves backwards.
func (g *Group) merge() {
	g.mergeMu.Lock()
	defer g.mergeMu.Unlock()
	start := time.Now()
	n := len(g.members)
	views := make([]core.ParamView, n)
	weights := make([]float64, n)
	mv := &mergedView{componentIter: make([]int, n), done: true}
	for k, t := range g.members {
		srv := t.Server()
		v := srv.ParamView()
		views[k] = v
		weights[k] = float64(v.Version)
		mv.componentIter[k] = v.Version
		mv.iteration += v.Version
		if !srv.Stopped() {
			mv.done = false
		}
		ns, ne, nky := srv.CrowdTotals()
		mv.totalNs += ns
		mv.totalNe += ne
		if mv.totalNky == nil {
			mv.totalNky = make([]int64, len(nky))
		}
		for i, c := range nky {
			mv.totalNky[i] += c
		}
	}
	params, err := core.MergeParamViews(views, weights)
	if err != nil {
		// Shapes are validated at New and snapshots never change shape;
		// reaching this means a programming error. Keep serving the last
		// good view rather than publishing garbage.
		return
	}
	mv.params = params
	prev := g.merged.Load()
	advanced := 0
	if prev != nil {
		advanced = mv.iteration - prev.iteration
	}
	g.merged.Store(mv)
	g.recordMergedView(mv)
	g.m.observeMerge(start, advanced)
}
