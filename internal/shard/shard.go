// Package shard implements the sharded leader tier: one logical
// crowd-learning task partitioned across N ordinary leader tasks behind
// a routing front-end. PR 6 scaled the read path (WAL-shipping follower
// replicas); this package scales the WRITE path — every checkin for a
// task no longer funnels through a single leader's batch queue.
//
// Topology. A Group owns N member tasks on a hub, named
// "{task}.shard-{k}" (valid task IDs and valid store directory names,
// so every member is a full leader: its own WAL/checkpoint lineage,
// journal feed, retention, replication and telemetry work per shard
// unchanged). A versioned ShardMap assigns each device to exactly one
// member by stable hashing, so a device's whole credential and counter
// history lives on one shard.
//
// Routing. Writes (checkin, register) are proxied to the owning member.
// Reads (checkout, stats) are served from a merged view: a periodic
// merger goroutine pulls each member's zero-copy parameter snapshot
// (core.ParamView) and combines them weighted by shard checkin counts —
// the paper-style model averaging — publishing the result through an
// atomic pointer so merged checkouts stay lock-free. The Group
// implements hub.ShardRouter; mounting it on the hub makes the HTTP
// layer route the logical task's /v1/tasks/{id}/... traffic through it,
// aggregate healthz, and fold the members out of listings.
package shard

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// MapVersion1 is the current (and only) shard-map placement version:
// shard(device) = FNV-1a-64(deviceID) mod N. The version is carried so a
// future resharding can introduce a new placement function and routers
// can translate between map generations during migration; the
// conformance test pins version 1's assignments forever.
const MapVersion1 = 1

// memberSep joins a logical task ID and a shard index into a member
// task ID. "." keeps the member ID valid both as a hub task ID and as a
// store directory name (store roots reject path separators).
const memberSep = ".shard-"

// ShardMap is the versioned device→shard placement for one logical
// task: N shards and a stable hash. It is a value type — copying it is
// free, and two processes constructing the same (version, N) map route
// identically, which is what lets any stateless router front the same
// tier.
type ShardMap struct {
	n       int
	version int
}

// NewShardMap returns the version-1 map over n shards (n ≥ 1).
func NewShardMap(n int) (ShardMap, error) {
	if n < 1 {
		return ShardMap{}, fmt.Errorf("shard: NewShardMap(%d): need at least 1 shard", n)
	}
	return ShardMap{n: n, version: MapVersion1}, nil
}

// N returns the shard count.
func (m ShardMap) N() int { return m.n }

// Version returns the placement version (MapVersion1).
func (m ShardMap) Version() int { return m.version }

// Shard returns the shard index owning deviceID: FNV-1a-64 of the raw
// ID, mod N. Stable across processes, restarts, and Go versions — the
// assignment is part of the tier's on-disk contract (a device's
// credentials and counters live on its shard's WAL).
func (m ShardMap) Shard(deviceID string) int {
	f := fnv.New64a()
	_, _ = f.Write([]byte(deviceID)) // fnv never errors
	return int(f.Sum64() % uint64(m.n))
}

// MemberTaskID returns the member task ID for shard k of a logical
// task, e.g. MemberTaskID("activity", 2) → "activity.shard-2".
func MemberTaskID(taskID string, k int) string {
	return taskID + memberSep + strconv.Itoa(k)
}

// ParseMemberID splits a member task ID back into its logical task ID
// and shard index; ok is false for IDs that are not member-shaped. Used
// by restart logic (skip members when re-opening a hub; the Group
// restores them itself) and operator tooling.
func ParseMemberID(id string) (taskID string, shard int, ok bool) {
	i := strings.LastIndex(id, memberSep)
	if i <= 0 {
		return "", 0, false
	}
	k, err := strconv.Atoi(id[i+len(memberSep):])
	if err != nil || k < 0 {
		return "", 0, false
	}
	return id[:i], k, true
}
