package shard

import (
	"context"

	"github.com/crowdml/crowdml/internal/core"
)

// deltaHistory is how many published merged views the Group retains for
// delta checkouts — the sharded counterpart of core's snapshot ring
// (core.DefaultDeltaHistory). Ring entries are pointers to views the
// merger published anyway; no extra copies.
const deltaHistory = core.DefaultDeltaHistory

// recordMergedView appends a just-published merged view to the delta
// ring. The merged iteration (Σ member versions) is monotone and, for a
// given iteration, the merged parameters are a deterministic function
// of the members' immutable snapshots — so a same-iteration republish
// is a pointer swap, exactly like core's ring.
func (g *Group) recordMergedView(mv *mergedView) {
	g.deltaMu.Lock()
	defer g.deltaMu.Unlock()
	if n := len(g.deltaRing); n > 0 && g.deltaRing[n-1].iteration == mv.iteration {
		g.deltaRing[n-1] = mv
		return
	}
	if len(g.deltaRing) == deltaHistory {
		copy(g.deltaRing, g.deltaRing[1:])
		g.deltaRing[len(g.deltaRing)-1] = mv
		return
	}
	g.deltaRing = append(g.deltaRing, mv)
}

// CheckoutDelta is the sharded delta checkout: authenticate on the
// device's owning member, then answer from the merged-view ring with
// the same contract as core.Server.CheckoutDelta — a sparse change set
// when the caller's base iteration is retained, the zero-copy full
// merged vector otherwise. The transport layer serves the binary wire's
// ?since=N through this, so devices cannot tell a sharded task from a
// plain one on the delta path either.
func (g *Group) CheckoutDelta(ctx context.Context, deviceID, token string, since int) (*core.ParamDelta, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := g.smap.Shard(deviceID)
	if err := g.members[k].Server().Authenticate(ctx, deviceID, token); err != nil {
		return nil, err
	}
	g.m.routedCheckout(k)
	mv := g.merged.Load()
	d := &core.ParamDelta{
		Version: mv.iteration,
		Done:    mv.done,
		Params:  mv.params,
		Since:   -1,
	}
	if since < 0 || since > mv.iteration {
		return d, nil
	}
	if since == mv.iteration {
		d.Since = since
		return d, nil
	}
	var base *mergedView
	g.deltaMu.Lock()
	for i := len(g.deltaRing) - 1; i >= 0; i-- {
		if g.deltaRing[i].iteration == since {
			base = g.deltaRing[i]
			break
		}
		if g.deltaRing[i].iteration < since {
			break
		}
	}
	g.deltaMu.Unlock()
	if base == nil || len(base.params) != len(mv.params) {
		return d, nil
	}
	d.Since = since
	d.Indices, d.Values = core.DiffParams(base.params, mv.params)
	return d, nil
}
