package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/hub"
	"github.com/crowdml/crowdml/internal/store"
	"github.com/crowdml/crowdml/internal/telemetry"
)

// DefaultMergeInterval is how often the merger goroutine rebuilds the
// merged view when WithMergeInterval is not given. Merged checkouts can
// trail the shard tier by at most this long plus one merge; the
// crowdml_shard_merge_staleness_iterations gauge reports the realized
// bound in iterations.
const DefaultMergeInterval = 100 * time.Millisecond

// Option configures New.
type Option func(*config)

type config struct {
	shards     int
	mergeEvery time.Duration
	stores     store.Root
	info       hub.TaskInfo
	taskOpts   []hub.TaskOption
	memberOpts func(shard int, memberID string) []hub.TaskOption
	metrics    *telemetry.Registry
}

// WithShards sets the shard count N (default 1 — a sharded facade over
// a single leader, useful as a control and for growing into later).
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithMergeInterval sets how often the merger goroutine rebuilds the
// merged view (default DefaultMergeInterval).
func WithMergeInterval(d time.Duration) Option {
	return func(c *config) { c.mergeEvery = d }
}

// WithStores makes every member task durable: member k journals and
// checkpoints into root's store for its member ID ("{task}.shard-{k}"),
// so each shard has its own WAL/checkpoint lineage and a restarted tier
// restores per shard exactly like any durable task. Combine with
// WithTaskOptions / WithMemberTaskOptions to set checkpoint, sync and
// retention policies.
func WithStores(root store.Root) Option {
	return func(c *config) { c.stores = root }
}

// WithInfo sets the logical task's portal metadata. Member tasks derive
// theirs from it (the name gains a "(shard k/N)" suffix).
func WithInfo(info hub.TaskInfo) Option {
	return func(c *config) { c.info = info }
}

// WithTaskOptions appends hub options applied identically to every
// member task (checkpoint policy, sync policy, retention, ...).
func WithTaskOptions(opts ...hub.TaskOption) Option {
	return func(c *config) { c.taskOpts = append(c.taskOpts, opts...) }
}

// WithMemberTaskOptions supplies per-member hub options — for knobs
// that must differ per shard, like an archive directory rooted inside
// each member's own store. Applied after WithTaskOptions.
func WithMemberTaskOptions(f func(shard int, memberID string) []hub.TaskOption) Option {
	return func(c *config) { c.memberOpts = f }
}

// WithMetrics instruments the tier into reg: the router's sharding
// series (per-shard routed requests, merge latency, merges, staleness)
// plus the ordinary per-task series of every member (labeled with its
// member ID).
func WithMetrics(reg *telemetry.Registry) Option {
	return func(c *config) { c.metrics = reg }
}

// Group is one sharded logical task: N member leader tasks plus the
// routing/merging front-end. It implements hub.ShardRouter (New mounts
// it on the hub, which is what routes the logical task's HTTP traffic
// through it) and core.Transport (in-process devices can run against it
// directly, exactly like against a Loopback).
type Group struct {
	hub     *hub.Hub
	id      string
	info    hub.TaskInfo // base portal metadata, without shard decoration
	smap    ShardMap
	members []*hub.Task // index = shard

	// merged is the published merged view; lock-free readers, replaced
	// wholesale by the merger. Never nil after New (which merges once
	// synchronously before the Group is visible).
	merged atomic.Pointer[mergedView]

	mergeEvery time.Duration
	// mergeMu serializes merged-view builds: the periodic merger and any
	// explicit Merge caller publish in a consistent order.
	mergeMu sync.Mutex
	// deltaMu guards deltaRing, the recent merged views retained for
	// delta checkouts (see delta.go). Leaf lock, taken after mergeMu by
	// the publisher and alone by readers.
	deltaMu   sync.Mutex
	deltaRing []*mergedView
	m         *groupMetrics

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

var (
	_ hub.ShardRouter = (*Group)(nil)
	_ core.Transport  = (*Group)(nil)
)

// New creates the member tasks "{taskID}.shard-{k}" for k < N on the
// hub, mounts the Group as taskID's router, publishes an initial merged
// view, and starts the merger goroutine. configure is called once per
// shard and must return a fresh ServerConfig each time — Updaters are
// stateful (AdaGrad accumulators, Momentum velocity) and cannot be
// shared across shards. With WithStores, members restore any persisted
// state before the tier goes live, so restarting a sharded deployment
// is just calling New again with the same arguments.
func New(ctx context.Context, h *hub.Hub, taskID string, configure func(shard int) core.ServerConfig, opts ...Option) (*Group, error) {
	if h == nil {
		return nil, errors.New("shard: New: nil hub")
	}
	if configure == nil {
		return nil, errors.New("shard: New: nil configure")
	}
	if !hub.ValidTaskID(taskID) {
		return nil, fmt.Errorf("shard: %q: %w", taskID, hub.ErrBadTaskID)
	}
	c := config{shards: 1, mergeEvery: DefaultMergeInterval}
	for _, opt := range opts {
		opt(&c)
	}
	smap, err := NewShardMap(c.shards)
	if err != nil {
		return nil, err
	}
	if c.mergeEvery <= 0 {
		c.mergeEvery = DefaultMergeInterval
	}
	if c.info.Name == "" {
		c.info.Name = taskID
	}

	g := &Group{
		hub:        h,
		id:         taskID,
		info:       c.info,
		smap:       smap,
		mergeEvery: c.mergeEvery,
		m:          newGroupMetrics(c.metrics, taskID, c.shards),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	// Any failure below must tear down the members already created — a
	// half-built tier left on the hub would serve a fraction of the crowd
	// under per-shard IDs with no router in front.
	fail := func(err error) (*Group, error) {
		for _, t := range g.members {
			_ = h.CloseTask(ctx, t.ID())
		}
		return nil, err
	}
	for k := 0; k < c.shards; k++ {
		memberID := MemberTaskID(taskID, k)
		cfg := configure(k)
		info := c.info
		info.Name = fmt.Sprintf("%s (shard %d/%d)", c.info.Name, k, c.shards)
		memberOpts := []hub.TaskOption{hub.WithInfo(info)}
		if c.stores != nil {
			st, err := c.stores.Open(ctx, memberID)
			if err != nil {
				return fail(fmt.Errorf("shard: open store for %q: %w", memberID, err))
			}
			memberOpts = append(memberOpts, hub.WithStore(st))
		}
		if c.metrics != nil {
			memberOpts = append(memberOpts, hub.WithMetrics(c.metrics))
		}
		memberOpts = append(memberOpts, c.taskOpts...)
		if c.memberOpts != nil {
			memberOpts = append(memberOpts, c.memberOpts(k, memberID)...)
		}
		t, err := h.CreateTask(ctx, memberID, cfg, memberOpts...)
		if err != nil {
			return fail(fmt.Errorf("shard: create %q: %w", memberID, err))
		}
		g.members = append(g.members, t)
	}
	// Shards must agree on the model shape or the merged view is
	// meaningless (and MergeParamViews would reject it every cycle).
	c0, d0 := g.members[0].Server().ModelShape()
	for k, t := range g.members[1:] {
		if ck, dk := t.Server().ModelShape(); ck != c0 || dk != d0 {
			return fail(fmt.Errorf("shard: shard %d shape (%d,%d) != shard 0 shape (%d,%d)", k+1, ck, dk, c0, d0))
		}
	}
	// Publish a merged view before the tier is reachable, so no reader
	// ever observes a nil pointer.
	g.merge()
	if err := h.MountShardRouter(g); err != nil {
		return fail(fmt.Errorf("shard: mount %q: %w", taskID, err))
	}
	go g.run()
	return g, nil
}

// run is the merger goroutine: rebuild the merged view every
// mergeEvery until Stop.
func (g *Group) run() {
	defer close(g.done)
	tick := time.NewTicker(g.mergeEvery)
	defer tick.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-tick.C:
			g.merge()
		}
	}
}

// Stop halts the merger goroutine (idempotent). The tier keeps serving:
// writes still route, and merged reads serve the last published view.
func (g *Group) Stop() {
	g.stopOnce.Do(func() { close(g.stop) })
	<-g.done
}

// Close shuts the tier down: the merger stops, the router unmounts (the
// logical ID stops resolving), and every member task is closed through
// the hub — final checkpoint and journal close for durable members.
// Member IDs the hub already closed (e.g. a prior Hub.Close) are
// tolerated. Errors are joined so one wedged shard store cannot hide
// another's.
func (g *Group) Close(ctx context.Context) error {
	g.Stop()
	g.hub.UnmountShardRouter(g.id)
	var errs []error
	for _, t := range g.members {
		if err := g.hub.CloseTask(ctx, t.ID()); err != nil && !errors.Is(err, hub.ErrTaskNotFound) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Merge rebuilds and publishes the merged view immediately, in the
// caller's goroutine — on top of the periodic merger. Callers that just
// wrote through the tier (tests, bulk preregistration) use it to make
// the merged view reflect their writes without waiting a cycle.
func (g *Group) Merge() { g.merge() }

// Members returns the member tasks in shard order (shard k at index k).
func (g *Group) Members() []*hub.Task {
	out := make([]*hub.Task, len(g.members))
	copy(out, g.members)
	return out
}

// Map returns the group's shard map.
func (g *Group) Map() ShardMap { return g.smap }
