package shard

import (
	"fmt"
	"testing"
)

// TestShardMapGoldenAssignments pins the version-1 placement function
// forever: these device→shard assignments are part of the tier's
// on-disk contract (a device's credentials and counters live in its
// shard's WAL), so they must survive process restarts, recompilation,
// and Go upgrades bit-for-bit. If this test fails, the placement
// changed — that requires a NEW map version with migration, never an
// edit to these tables.
func TestShardMapGoldenAssignments(t *testing.T) {
	golden := map[int]map[string]int{
		4: {
			"device-000": 2, "device-001": 1, "device-002": 0, "device-003": 3,
			"device-004": 2, "device-005": 1, "device-006": 0, "device-007": 3,
			"device-008": 2, "device-009": 1,
			"phone-1": 1, "phone-2": 0, "watch-7": 0, "tablet-α": 1,
			"": 1, "a": 0, "b": 1, "c": 2,
			"0123456789abcdef0123456789abcdef": 1,
			"Device-000":                       2, // case-sensitive: distinct device
		},
		8: {
			"device-000": 6, "device-001": 1, "device-002": 0, "device-003": 3,
			"device-004": 2, "device-005": 5, "device-006": 4, "device-007": 7,
			"device-008": 6, "device-009": 1,
			"phone-1": 5, "phone-2": 4, "watch-7": 0, "tablet-α": 5,
			"": 5, "a": 4, "b": 5, "c": 2,
			"0123456789abcdef0123456789abcdef": 5,
			"Device-000":                       6,
		},
	}
	for n, want := range golden {
		m, err := NewShardMap(n)
		if err != nil {
			t.Fatal(err)
		}
		if m.Version() != MapVersion1 {
			t.Fatalf("NewShardMap(%d).Version() = %d, want %d", n, m.Version(), MapVersion1)
		}
		for dev, k := range want {
			if got := m.Shard(dev); got != k {
				t.Errorf("v1 map n=%d: Shard(%q) = %d, want pinned %d", n, dev, got, k)
			}
		}
	}
}

// TestShardMapStability re-derives every assignment from a second,
// independently constructed map — the "across process restarts" half of
// the conformance contract reduced to what a single process can check:
// placement depends only on (version, N, deviceID), not on any map
// instance state.
func TestShardMapStability(t *testing.T) {
	a, _ := NewShardMap(5)
	b, _ := NewShardMap(5)
	for i := 0; i < 1000; i++ {
		dev := fmt.Sprintf("device-%05d", i)
		if a.Shard(dev) != b.Shard(dev) {
			t.Fatalf("two identical maps disagree on %q", dev)
		}
	}
}

func TestShardMapDistribution(t *testing.T) {
	m, _ := NewShardMap(4)
	counts := make([]int, 4)
	for i := 0; i < 10000; i++ {
		k := m.Shard(fmt.Sprintf("device-%05d", i))
		if k < 0 || k >= 4 {
			t.Fatalf("shard index %d out of range", k)
		}
		counts[k]++
	}
	// FNV over sequential IDs spreads well; just guard against a gross
	// skew (a broken hash would put everything in one bucket).
	for k, c := range counts {
		if c < 1500 || c > 3500 {
			t.Errorf("shard %d holds %d of 10000 devices (gross skew): %v", k, c, counts)
		}
	}
}

func TestNewShardMapValidation(t *testing.T) {
	if _, err := NewShardMap(0); err == nil {
		t.Error("NewShardMap(0) did not error")
	}
	if _, err := NewShardMap(-3); err == nil {
		t.Error("NewShardMap(-3) did not error")
	}
	m, err := NewShardMap(1)
	if err != nil {
		t.Fatal(err)
	}
	if k := m.Shard("anything"); k != 0 {
		t.Errorf("single-shard map returned shard %d", k)
	}
}

func TestMemberTaskIDRoundTrip(t *testing.T) {
	id := MemberTaskID("activity", 2)
	if id != "activity.shard-2" {
		t.Fatalf("MemberTaskID = %q", id)
	}
	task, k, ok := ParseMemberID(id)
	if !ok || task != "activity" || k != 2 {
		t.Fatalf("ParseMemberID(%q) = %q, %d, %v", id, task, k, ok)
	}
	// Nested logical IDs that themselves contain the separator still
	// round-trip (LastIndex).
	nested := MemberTaskID("a.shard-1", 3)
	task, k, ok = ParseMemberID(nested)
	if !ok || task != "a.shard-1" || k != 3 {
		t.Fatalf("ParseMemberID(%q) = %q, %d, %v", nested, task, k, ok)
	}
	for _, bad := range []string{"activity", "activity.shard-", "activity.shard-x", ".shard-1", "activity.shard--2"} {
		if _, _, ok := ParseMemberID(bad); ok {
			t.Errorf("ParseMemberID(%q) unexpectedly ok", bad)
		}
	}
}
