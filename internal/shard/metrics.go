package shard

import (
	"strconv"
	"time"

	"github.com/crowdml/crowdml/internal/telemetry"
)

// groupMetrics is the router-layer telemetry of one sharded logical
// task. All handles are pre-bound at Group construction (per shard and
// per operation for the routing counters), so the hot paths record with
// lock-free atomic adds and never touch the registry again. A nil
// *groupMetrics disables recording at one branch per call — the same
// nil-safety contract the rest of the telemetry layer follows.
type groupMetrics struct {
	// routed[k] counts requests routed to (or served for) shard k, one
	// counter per operation: checkout, checkin, register.
	routed []routedOps
	// mergeSeconds observes merger-cycle latency; merges counts cycles.
	mergeSeconds *telemetry.Histogram
	merges       *telemetry.Counter
	// staleness gauges how many iterations the member tier advanced
	// between consecutive merges — the iteration-staleness bound on what
	// merged checkouts served during the last cycle.
	staleness *telemetry.Gauge
}

type routedOps struct {
	checkout, checkin, register *telemetry.Counter
}

// newGroupMetrics binds the sharding series for a logical task; nil reg
// returns nil (telemetry off).
func newGroupMetrics(reg *telemetry.Registry, taskID string, shards int) *groupMetrics {
	if reg == nil {
		return nil
	}
	m := &groupMetrics{
		routed: make([]routedOps, shards),
		mergeSeconds: reg.Histogram("crowdml_shard_merge_seconds",
			"Latency of one merged-view build across all shards.",
			telemetry.DurationBuckets, telemetry.L("task", taskID)),
		merges: reg.Counter("crowdml_shard_merges_total",
			"Merged-view builds published by the shard router.",
			telemetry.L("task", taskID)),
		staleness: reg.Gauge("crowdml_shard_merge_staleness_iterations",
			"Iterations the shard tier advanced between the last two merges (staleness bound of served merged checkouts).",
			telemetry.L("task", taskID)),
	}
	for k := range m.routed {
		ls := func(op string) []telemetry.Label {
			return []telemetry.Label{
				telemetry.L("task", taskID),
				telemetry.L("shard", strconv.Itoa(k)),
				telemetry.L("op", op),
			}
		}
		const help = "Device-protocol requests routed through the shard router, per owning shard and operation."
		m.routed[k] = routedOps{
			checkout: reg.Counter("crowdml_shard_routed_requests_total", help, ls("checkout")...),
			checkin:  reg.Counter("crowdml_shard_routed_requests_total", help, ls("checkin")...),
			register: reg.Counter("crowdml_shard_routed_requests_total", help, ls("register")...),
		}
	}
	return m
}

func (m *groupMetrics) routedCheckout(k int) {
	if m != nil {
		m.routed[k].checkout.Inc()
	}
}

func (m *groupMetrics) routedCheckin(k int) {
	if m != nil {
		m.routed[k].checkin.Inc()
	}
}

func (m *groupMetrics) routedRegister(k int) {
	if m != nil {
		m.routed[k].register.Inc()
	}
}

// observeMerge records one merger cycle: its latency and the iterations
// the tier advanced since the previous published view.
func (m *groupMetrics) observeMerge(start time.Time, advanced int) {
	if m == nil {
		return
	}
	m.mergeSeconds.ObserveSince(start)
	m.merges.Inc()
	m.staleness.Set(float64(advanced))
}
