package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/hub"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/store"
)

const (
	testClasses = 2
	testDim     = 3
)

func testConfigure(shard int) core.ServerConfig {
	return core.ServerConfig{
		Model:   model.NewLogisticRegression(testClasses, testDim),
		Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 1}},
	}
}

// newTestGroup builds an n-shard group with a long merge interval so
// tests control merging explicitly via g.merge().
func newTestGroup(t *testing.T, h *hub.Hub, id string, n int, opts ...Option) *Group {
	t.Helper()
	opts = append([]Option{WithShards(n), WithMergeInterval(time.Hour)}, opts...)
	g, err := New(context.Background(), h, id, testConfigure, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Stop)
	return g
}

// drive registers a device on the group and applies n unit-gradient
// checkins, returning its token.
func drive(t *testing.T, g *Group, deviceID string, n int) string {
	t.Helper()
	ctx := context.Background()
	token, err := g.Register(ctx, deviceID)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		req := &core.CheckinRequest{
			Grad:        []float64{1, 0, 0, 0, 0, 0},
			NumSamples:  2,
			ErrCount:    1,
			LabelCounts: []int{1, 1},
		}
		if err := g.Checkin(ctx, deviceID, token, req); err != nil {
			t.Fatal(err)
		}
	}
	return token
}

func TestGroupCreatesMembersAndMounts(t *testing.T) {
	h := hub.New()
	g := newTestGroup(t, h, "act", 4)
	want := []string{"act.shard-0", "act.shard-1", "act.shard-2", "act.shard-3"}
	ids := g.MemberIDs()
	if len(ids) != 4 {
		t.Fatalf("MemberIDs = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("member %d = %q, want %q", i, ids[i], id)
		}
		if _, ok := h.Task(id); !ok {
			t.Errorf("member task %q not hosted", id)
		}
		if logical, ok := h.ShardMemberOf(id); !ok || logical != "act" {
			t.Errorf("ShardMemberOf(%q) = %q, %v", id, logical, ok)
		}
	}
	if r, ok := h.ShardRouterFor("act"); !ok || r.(*Group) != g {
		t.Fatal("group not mounted as act's router")
	}
	if g.MapVersion() != MapVersion1 {
		t.Errorf("MapVersion = %d", g.MapVersion())
	}
}

func TestRoutingIsDeterministicAndOwningShardOnly(t *testing.T) {
	ctx := context.Background()
	h := hub.New()
	g := newTestGroup(t, h, "act", 4)
	for i := 0; i < 16; i++ {
		dev := fmt.Sprintf("device-%03d", i)
		member := g.RouteDevice(dev)
		if member != g.RouteDevice(dev) {
			t.Fatalf("routing for %q not deterministic", dev)
		}
		token := drive(t, g, dev, 1)
		// The credential must live on the owning member and nowhere else.
		for _, mt := range g.Members() {
			err := mt.Server().Authenticate(ctx, dev, token)
			if mt.ID() == member && err != nil {
				t.Errorf("owning member %q rejects %q: %v", member, dev, err)
			}
			if mt.ID() != member && err == nil {
				t.Errorf("non-owning member %q accepted %q", mt.ID(), dev)
			}
		}
	}
	// Checkin totals across members equal the checkins driven.
	total := 0
	for _, mt := range g.Members() {
		total += mt.Server().Iteration()
	}
	if total != 16 {
		t.Fatalf("Σ member iterations = %d, want 16", total)
	}
}

func TestMergedViewWeightedAverageAndStats(t *testing.T) {
	ctx := context.Background()
	h := hub.New()
	g := newTestGroup(t, h, "act", 2)

	// Before any traffic: merged view serves the shared zero init.
	resp, err := g.Checkout(ctx, "unregistered", "nope")
	if !errors.Is(err, core.ErrAuth) {
		t.Fatalf("unauthenticated merged checkout err = %v, want ErrAuth", err)
	}

	// device-002 hashes to shard 0 of 2 (golden: FNV64a%4==0 ⇒ %2==0),
	// device-001 to shard 1. Drive them unevenly.
	const dev0, dev1 = "device-002", "device-001"
	if g.RouteDevice(dev0) != "act.shard-0" || g.RouteDevice(dev1) != "act.shard-1" {
		t.Fatalf("test devices route to %q/%q", g.RouteDevice(dev0), g.RouteDevice(dev1))
	}
	t0 := drive(t, g, dev0, 1) // shard 0: 1 checkin
	drive(t, g, dev1, 3)       // shard 1: 3 checkins
	g.merge()

	resp, err = g.Checkout(ctx, dev0, t0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != 4 {
		t.Fatalf("merged Version = %d, want Σ iterations = 4", resp.Version)
	}
	// Constant η=1 and unit gradient on coordinate 0: shard 0's param[0]
	// is -1, shard 1's is -3. Weighted by checkin counts (1,3):
	// (1·(-1) + 3·(-3))/4 = -2.5.
	if got := resp.Params[0]; math.Abs(got-(-2.5)) > 1e-12 {
		t.Fatalf("merged param[0] = %g, want -2.5", got)
	}

	s := g.MergedStats()
	if s.Iteration != 4 || s.Stopped || s.Shards != 2 || s.MapVersion != MapVersion1 {
		t.Fatalf("MergedStats = %+v", s)
	}
	if s.Classes != testClasses || s.Dim != testDim {
		t.Fatalf("MergedStats shape = (%d,%d)", s.Classes, s.Dim)
	}
	// 4 checkins × (2 samples, 1 error): ΣN_s=8, ΣN_e=4 ⇒ estimate 0.5.
	if !s.HasError || math.Abs(s.ErrorEstimate-0.5) > 1e-12 {
		t.Fatalf("merged error estimate = %v (has=%v), want 0.5", s.ErrorEstimate, s.HasError)
	}
	if len(s.PriorEstimate) != 2 || math.Abs(s.PriorEstimate[0]-0.5) > 1e-12 {
		t.Fatalf("merged prior = %v", s.PriorEstimate)
	}

	// Shard rows: live iterations, merge lag 0 right after a merge.
	rows := g.ShardRows()
	if len(rows) != 2 || rows[0].Iteration != 1 || rows[1].Iteration != 3 {
		t.Fatalf("ShardRows = %+v", rows)
	}
	for _, r := range rows {
		if !r.Ready || r.MergeLag != 0 {
			t.Errorf("row %+v, want ready with zero lag", r)
		}
	}
	// More traffic without a merge: lag appears, published view is stale.
	drive(t, g, "device-004", 2)
	rows = g.ShardRows()
	lag := 0
	for _, r := range rows {
		lag += r.MergeLag
	}
	if lag != 2 {
		t.Fatalf("Σ MergeLag = %d, want 2 (unmerged checkins)", lag)
	}
	if v := g.merged.Load().iteration; v != 4 {
		t.Fatalf("published merged iteration moved to %d without a merge", v)
	}
}

func TestMergedIterationMonotoneAndVersionClamp(t *testing.T) {
	ctx := context.Background()
	h := hub.New()
	g := newTestGroup(t, h, "act", 2)
	const dev = "device-002" // shard 0
	token := drive(t, g, dev, 3)
	g.merge()
	prev := g.MergedStats().Iteration
	for i := 0; i < 5; i++ {
		drive(t, g, fmt.Sprintf("extra-%03d", i), 1)
		g.merge()
		cur := g.MergedStats().Iteration
		if cur < prev {
			t.Fatalf("merged iteration went backwards: %d → %d", prev, cur)
		}
		prev = cur
	}

	// A checkin echoing the merged Version (> the owning shard's local
	// iteration) must be clamped, keeping shard-local staleness ≥ 0.
	resp, err := g.Checkout(ctx, dev, token)
	if err != nil {
		t.Fatal(err)
	}
	local := 0
	for _, mt := range g.Members() {
		if mt.ID() == g.RouteDevice(dev) {
			local = mt.Server().Iteration()
		}
	}
	if resp.Version <= local {
		t.Fatalf("test needs merged version (%d) > shard-local (%d)", resp.Version, local)
	}
	req := &core.CheckinRequest{
		Grad:        make([]float64, testClasses*testDim),
		NumSamples:  1,
		LabelCounts: []int{1, 0},
		Version:     resp.Version,
	}
	if err := g.Checkin(ctx, dev, token, req); err != nil {
		t.Fatal(err)
	}
	if req.Version != local {
		t.Fatalf("echoed version clamped to %d, want shard-local %d", req.Version, local)
	}
	st, ok := g.Members()[0].Server().DeviceStats(dev)
	if !ok || st.StalenessSum < 0 {
		t.Fatalf("device staleness sum = %+v (ok=%v), want ≥ 0", st, ok)
	}
}

func TestGroupDoneOnlyWhenAllShardsStop(t *testing.T) {
	h := hub.New()
	g := newTestGroup(t, h, "act", 2)
	g.Members()[0].Server().Stop()
	g.merge()
	if g.MergedStats().Stopped {
		t.Fatal("merged view reports done with one live shard")
	}
	g.Members()[1].Server().Stop()
	g.merge()
	if !g.MergedStats().Stopped {
		t.Fatal("merged view not done with every shard stopped")
	}
}

func TestGroupDurableRestart(t *testing.T) {
	ctx := context.Background()
	root := store.NewMemRoot()

	h1 := hub.New()
	g1, err := New(ctx, h1, "act", testConfigure,
		WithShards(2), WithMergeInterval(time.Hour), WithStores(root))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, g1, "device-002", 2) // shard 0
	drive(t, g1, "device-001", 3) // shard 1
	if err := g1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh hub, same stores — every member must resume its
	// own lineage, and the merged view reflect the recovered tier.
	h2 := hub.New()
	g2, err := New(ctx, h2, "act", testConfigure,
		WithShards(2), WithMergeInterval(time.Hour), WithStores(root))
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Stop()
	iters := []int{}
	for _, mt := range g2.Members() {
		iters = append(iters, mt.Server().Iteration())
	}
	if iters[0] != 2 || iters[1] != 3 {
		t.Fatalf("restored member iterations = %v, want [2 3]", iters)
	}
	if s := g2.MergedStats(); s.Iteration != 5 {
		t.Fatalf("restored merged iteration = %d, want 5", s.Iteration)
	}
}

func TestGroupCloseUnmountsAndClosesMembers(t *testing.T) {
	ctx := context.Background()
	h := hub.New()
	g, err := New(ctx, h, "act", testConfigure, WithShards(2), WithMergeInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.ShardRouterFor("act"); ok {
		t.Error("router still mounted after Close")
	}
	for _, id := range []string{"act.shard-0", "act.shard-1"} {
		if _, ok := h.Task(id); ok {
			t.Errorf("member %q still hosted after Close", id)
		}
	}
	// Close after Hub.Close tolerates already-removed members.
	h2 := hub.New()
	g2, err := New(ctx, h2, "act", testConfigure, WithShards(2), WithMergeInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g2.Close(ctx); err != nil {
		t.Fatalf("Close after Hub.Close: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	ctx := context.Background()
	h := hub.New()
	if _, err := New(ctx, nil, "act", testConfigure); err == nil {
		t.Error("New(nil hub) did not error")
	}
	if _, err := New(ctx, h, "act", nil); err == nil {
		t.Error("New(nil configure) did not error")
	}
	if _, err := New(ctx, h, "bad/id", testConfigure); !errors.Is(err, hub.ErrBadTaskID) {
		t.Errorf("New(bad id) err = %v", err)
	}
	if _, err := New(ctx, h, "act", testConfigure, WithShards(0)); err == nil {
		t.Error("New(WithShards(0)) did not error")
	}
	// Mismatched shapes across shards must fail — and clean up the
	// members it already created.
	badConfigure := func(k int) core.ServerConfig {
		dim := testDim + k
		return core.ServerConfig{
			Model:   model.NewLogisticRegression(testClasses, dim),
			Updater: &optimizer.SGD{Schedule: optimizer.Constant{C: 1}},
		}
	}
	if _, err := New(ctx, h, "act", badConfigure, WithShards(2)); err == nil {
		t.Fatal("New(mismatched shapes) did not error")
	}
	if _, ok := h.Task("act.shard-0"); ok {
		t.Error("failed New left member tasks behind")
	}
	// The ID space is still clean: a proper group mounts fine.
	if g, err := New(ctx, h, "act", testConfigure, WithShards(2), WithMergeInterval(time.Hour)); err != nil {
		t.Fatal(err)
	} else {
		g.Stop()
	}
}
