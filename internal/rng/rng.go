// Package rng provides deterministic, splittable pseudo-random streams and
// the distribution samplers required by Crowd-ML's privacy mechanisms:
// continuous Laplace noise (Eq. 10 of the paper), discrete Laplace noise
// (Eqs. 11–12, after Inusah & Kozubowski 2006), Gaussian noise (the (ε,δ)
// variant mentioned in footnote 1), and categorical sampling (exponential
// mechanism for labels, Appendix C).
//
// Determinism matters here: the paper's simulated experiments average ten
// randomized trials; seeding every trial makes figures exactly reproducible.
package rng

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"math"
)

// RNG is a small, fast PRNG (SplitMix64 core) with convenience samplers.
// It is NOT cryptographically secure; it is used for simulation and for the
// noise in simulated privacy experiments. The zero value is not usable —
// construct with New.
//
// RNG is not safe for concurrent use; give each goroutine its own stream
// via Split.
type RNG struct {
	state uint64
	// secure switches Uint64 to crypto/rand (see NewSecure).
	secure bool
	// cached spare Gaussian from Box–Muller
	hasSpare bool
	spare    float64
}

// New returns an RNG seeded with seed. Two RNGs with the same seed produce
// identical streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child stream deterministically from the
// parent's current state. Used to hand one stream to each simulated device.
// Splitting a secure RNG returns another secure RNG.
func (r *RNG) Split() *RNG {
	if r.secure {
		return NewSecure()
	}
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly distributed bits (SplitMix64, or
// crypto/rand for RNGs constructed with NewSecure).
func (r *RNG) Uint64() uint64 {
	if r.secure {
		var buf [8]byte
		if _, err := cryptorand.Read(buf[:]); err != nil {
			panic("rng: secure randomness unavailable: " + err.Error())
		}
		return binary.LittleEndian.Uint64(buf[:])
	}
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices via the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Uniform returns a uniform float in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Gaussian returns a standard normal sample via Box–Muller with caching.
func (r *RNG) Gaussian() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.Gaussian()
}

// NewSecure returns an RNG whose 64-bit words are drawn from crypto/rand
// instead of the deterministic SplitMix64 stream. Use it for production
// privacy noise: the differential-privacy guarantees assume the adversary
// cannot predict the noise, which a seeded simulation stream does not
// provide. Sampling is ~two orders of magnitude slower than the seeded
// stream; that is irrelevant at one minibatch of noise per checkin.
//
// If the system's secure randomness source fails, the RNG panics: silently
// degrading privacy noise would be worse than crashing (and crypto/rand
// failures are already considered unrecoverable by the Go runtime).
func NewSecure() *RNG {
	return &RNG{secure: true}
}
