package rng

import "math"

// Laplace returns a sample from the zero-mean Laplace distribution with
// scale parameter scale > 0, i.e. density p(z) ∝ exp(−|z|/scale).
//
// This is the noise of the paper's Eq. (10): adding Laplace noise with
// scale = S(f)/ε to a function with L1-sensitivity S(f) yields
// ε-differential privacy (Dwork et al. 2006, Proposition 1).
func (r *RNG) Laplace(scale float64) float64 {
	if scale <= 0 {
		panic("rng: Laplace with non-positive scale")
	}
	// Inverse CDF: u uniform in (-1/2, 1/2], z = -scale*sign(u)*ln(1-2|u|).
	u := r.Float64() - 0.5
	if u == -0.5 {
		u = 0.5 // avoid log(0) on the open endpoint
	}
	if u < 0 {
		return scale * math.Log(1+2*u)
	}
	return -scale * math.Log(1-2*u)
}

// LaplaceVec fills dst with independent Laplace(scale) samples.
func (r *RNG) LaplaceVec(scale float64, dst []float64) {
	for i := range dst {
		dst[i] = r.Laplace(scale)
	}
}

// DiscreteLaplace returns an integer sample from the discrete Laplace
// distribution P(z) ∝ exp(−|z|/scale) for z ∈ ℤ (Inusah & Kozubowski 2006),
// the "discrete Laplace noise" of the paper's Eqs. (11)–(12) used to
// sanitize the misclassification count n_e and the label counts n^k_y.
//
// Sampling uses the two-sided-geometric representation: z = G1 − G2 where
// G1, G2 are i.i.d. Geometric on {0,1,2,…} with success probability 1 − p,
// p = exp(−1/scale).
func (r *RNG) DiscreteLaplace(scale float64) int {
	if scale <= 0 {
		panic("rng: DiscreteLaplace with non-positive scale")
	}
	p := math.Exp(-1 / scale)
	return r.geometric(p) - r.geometric(p)
}

// geometric samples G ∈ {0,1,2,…} with P(G = k) = (1−p)·p^k via inverse CDF.
func (r *RNG) geometric(p float64) int {
	if p <= 0 {
		return 0
	}
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	// P(G >= k) = p^k, so G = floor(ln(u)/ln(p)).
	return int(math.Floor(math.Log(u) / math.Log(p)))
}

// Categorical samples an index from the (not necessarily normalized)
// non-negative weight vector. It panics if the weights are empty or sum to
// a non-positive value.
func (r *RNG) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Categorical with empty weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: Categorical with negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Categorical with non-positive total weight")
	}
	u := r.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
