package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling splits produced identical first values")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	r := New(5)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[r.Intn(4)]++
	}
	for k, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(4) bucket %d count %d, want ~10000", k, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	r := New(13)
	x := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]int(nil), x...)
	r.Shuffle(len(x), func(i, j int) { x[i], x[j] = x[j], x[i] })
	sum := 0
	for _, v := range x {
		sum += v
	}
	if sum != 45 {
		t.Errorf("Shuffle lost elements: %v", x)
	}
	identical := true
	for i := range x {
		if x[i] != orig[i] {
			identical = false
			break
		}
	}
	if identical {
		t.Error("Shuffle left 10 elements in place (astronomically unlikely)")
	}
}

func TestGaussianMoments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Gaussian()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Gaussian variance = %v, want ~1", variance)
	}
}

func TestNormal(t *testing.T) {
	r := New(19)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Normal(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Errorf("Normal(5,2) mean = %v", mean)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(23)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform(-3,7) out of range: %v", v)
		}
	}
}

// Property: uniform samples respect arbitrary [lo, hi) bounds.
func TestUniformProperty(t *testing.T) {
	r := New(29)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Mod(a, 1e6), math.Mod(b, 1e6)
		if lo >= hi {
			return true
		}
		v := r.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSecureRNGBasics(t *testing.T) {
	a, b := NewSecure(), NewSecure()
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Error("secure RNGs produced matching consecutive values")
	}
	for i := 0; i < 1000; i++ {
		v := a.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("secure Float64 out of range: %v", v)
		}
	}
	// Samplers built on Uint64 must work unchanged.
	if z := a.Laplace(1); math.IsNaN(z) || math.IsInf(z, 0) {
		t.Errorf("secure Laplace sample invalid: %v", z)
	}
	if c := a.Split(); !c.secure {
		t.Error("Split of a secure RNG must stay secure")
	}
}

func TestSecureRNGMoments(t *testing.T) {
	r := NewSecure()
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("secure uniform mean = %v", mean)
	}
}
