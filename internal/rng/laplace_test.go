package rng

import (
	"math"
	"testing"
)

func TestLaplaceMoments(t *testing.T) {
	// Laplace(scale) has mean 0 and variance 2*scale^2.
	tests := []struct {
		name  string
		scale float64
	}{
		{name: "scale 1", scale: 1},
		{name: "scale 0.1", scale: 0.1},
		{name: "scale 4", scale: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := New(31)
			const n = 200000
			var sum, sumSq float64
			for i := 0; i < n; i++ {
				v := r.Laplace(tt.scale)
				sum += v
				sumSq += v * v
			}
			mean := sum / n
			variance := sumSq/n - mean*mean
			wantVar := 2 * tt.scale * tt.scale
			if math.Abs(mean) > 0.03*tt.scale+1e-3 {
				t.Errorf("mean = %v, want ~0", mean)
			}
			if math.Abs(variance-wantVar) > 0.05*wantVar {
				t.Errorf("variance = %v, want ~%v", variance, wantVar)
			}
		})
	}
}

func TestLaplaceSymmetry(t *testing.T) {
	r := New(37)
	pos := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Laplace(1) > 0 {
			pos++
		}
	}
	frac := float64(pos) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("positive fraction = %v, want ~0.5", frac)
	}
}

func TestLaplaceTail(t *testing.T) {
	// P(|Z| > t) = exp(-t/scale). Check at t = 2, scale = 1: e^-2 ≈ 0.1353.
	r := New(41)
	const n = 200000
	exceed := 0
	for i := 0; i < n; i++ {
		if math.Abs(r.Laplace(1)) > 2 {
			exceed++
		}
	}
	frac := float64(exceed) / n
	want := math.Exp(-2)
	if math.Abs(frac-want) > 0.01 {
		t.Errorf("tail fraction = %v, want ~%v", frac, want)
	}
}

func TestLaplacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive scale")
		}
	}()
	New(1).Laplace(0)
}

func TestLaplaceVec(t *testing.T) {
	r := New(43)
	dst := make([]float64, 64)
	r.LaplaceVec(0.5, dst)
	allZero := true
	for _, v := range dst {
		if v != 0 {
			allZero = false
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("LaplaceVec produced non-finite value %v", v)
		}
	}
	if allZero {
		t.Error("LaplaceVec left destination all-zero")
	}
}

func TestDiscreteLaplaceMoments(t *testing.T) {
	// Discrete Laplace with p = exp(-1/scale) has mean 0 and variance
	// 2p/(1-p)^2 (Inusah & Kozubowski 2006) — the paper quotes the same
	// expression with p = e^{-ε/2} in Appendix B Remark 2.
	tests := []struct {
		name  string
		scale float64
	}{
		{name: "eps 2 (scale 1)", scale: 1},
		{name: "eps 0.5 (scale 4)", scale: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := New(47)
			p := math.Exp(-1 / tt.scale)
			wantVar := 2 * p / ((1 - p) * (1 - p))
			const n = 300000
			var sum, sumSq float64
			for i := 0; i < n; i++ {
				v := float64(r.DiscreteLaplace(tt.scale))
				sum += v
				sumSq += v * v
			}
			mean := sum / n
			variance := sumSq/n - mean*mean
			if math.Abs(mean) > 0.05*math.Sqrt(wantVar) {
				t.Errorf("mean = %v, want ~0", mean)
			}
			if math.Abs(variance-wantVar) > 0.05*wantVar {
				t.Errorf("variance = %v, want ~%v", variance, wantVar)
			}
		})
	}
}

func TestDiscreteLaplaceRatioProperty(t *testing.T) {
	// The defining property: P(z)/P(z+1) = exp(1/scale) for z >= 0.
	// Estimate empirically at z = 0 vs z = 1.
	r := New(53)
	const n = 500000
	scale := 2.0
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		counts[r.DiscreteLaplace(scale)]++
	}
	if counts[1] == 0 {
		t.Fatal("no mass at z=1")
	}
	ratio := float64(counts[0]) / float64(counts[1])
	want := math.Exp(1 / scale)
	if math.Abs(ratio-want) > 0.1*want {
		t.Errorf("P(0)/P(1) = %v, want ~%v", ratio, want)
	}
}

func TestDiscreteLaplacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive scale")
		}
	}()
	New(1).DiscreteLaplace(-1)
}

func TestCategorical(t *testing.T) {
	r := New(59)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.02 {
		t.Errorf("category 0 fraction = %v, want ~0.25", frac0)
	}
}

func TestCategoricalPanics(t *testing.T) {
	tests := []struct {
		name    string
		weights []float64
	}{
		{name: "empty", weights: nil},
		{name: "all zero", weights: []float64{0, 0}},
		{name: "negative", weights: []float64{1, -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			New(1).Categorical(tt.weights)
		})
	}
}
