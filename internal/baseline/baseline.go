// Package baseline implements the centralized comparison systems of the
// paper's evaluation: centralized batch learning and centralized SGD, both
// optionally under the Appendix C input-perturbation privacy mechanism
// (feature Laplace noise + exponential-mechanism label flipping). These are
// the "Central (batch)" and "Central (SGD, b=…)" curves of Figs. 4–9.
package baseline

import (
	"fmt"

	"github.com/crowdml/crowdml/internal/dataset"
	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/metrics"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/privacy"
	"github.com/crowdml/crowdml/internal/rng"
)

// InputPerturbation is the centralized approach's DP budget: the overall ε
// is split as ε = ε_x + ε_y between features (Eq. 15) and labels (Eq. 16);
// the paper uses ε_x = ε_y = ε/2 in the experiments.
type InputPerturbation struct {
	// Features is ε_x for the feature Laplace mechanism.
	Features privacy.Eps
	// Labels is ε_y for the exponential-mechanism label perturbation.
	Labels privacy.Eps
}

// SplitEvenly returns the paper's ε_x = ε_y = ε/2 split. A disabled total
// yields a disabled perturbation.
func SplitEvenly(total privacy.Eps) InputPerturbation {
	if !total.Enabled() {
		return InputPerturbation{}
	}
	half := privacy.Eps(float64(total) / 2)
	return InputPerturbation{Features: half, Labels: half}
}

// PerturbDataset applies the Appendix C mechanisms to every training
// sample, returning a fresh slice. Test data is never perturbed (the
// paper's footnote 8). Classes is C for the label mechanism.
func PerturbDataset(samples []model.Sample, classes int, p InputPerturbation, r *rng.RNG) []model.Sample {
	out := make([]model.Sample, len(samples))
	for i, s := range samples {
		x := linalg.Copy(s.X)
		privacy.PerturbFeatures(x, p.Features, r)
		out[i] = model.Sample{
			X: x,
			Y: privacy.PerturbLabel(s.Y, classes, p.Labels, r),
			T: s.T,
		}
	}
	return out
}

// BatchConfig configures the centralized batch learner.
type BatchConfig struct {
	// Model is the classifier; required.
	Model model.Model
	// Train and Test are the sample sets.
	Train, Test []model.Sample
	// Perturbation is the optional Appendix C input DP mechanism applied
	// to the training set before learning.
	Perturbation InputPerturbation
	// Epochs of full-batch gradient descent (default 150).
	Epochs int
	// Rate is the fixed batch GD step size (default 40, tuned for
	// L1-normalized features).
	Rate float64
	// Lambda is the regularization weight.
	Lambda float64
	// Seed drives the perturbation noise.
	Seed uint64
}

// RunBatch trains the centralized batch baseline and returns its test
// error — the flat reference line in the figures.
func RunBatch(cfg BatchConfig) (float64, error) {
	if cfg.Model == nil {
		return 0, fmt.Errorf("baseline: Model is required")
	}
	if len(cfg.Train) == 0 {
		return 0, fmt.Errorf("baseline: empty training set")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 150
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 40
	}
	r := rng.New(cfg.Seed)
	classes, _ := cfg.Model.Shape()
	train := PerturbDataset(cfg.Train, classes, cfg.Perturbation, r)

	w := model.NewParams(cfg.Model)
	g := model.NewParams(cfg.Model)
	inv := 1 / float64(len(train))
	for e := 0; e < cfg.Epochs; e++ {
		g.Zero()
		for _, s := range train {
			cfg.Model.AddGradient(w, g, s)
		}
		g.Scale(inv)
		if cfg.Lambda != 0 {
			if err := g.AddScaled(cfg.Lambda, w); err != nil {
				return 0, err
			}
		}
		w.AddScaled(-cfg.Rate, g)
	}
	return metrics.TestError(cfg.Model, w, cfg.Test), nil
}

// SGDConfig configures the centralized streaming baseline: devices send
// (perturbed) raw samples to the server, which runs minibatch SGD.
type SGDConfig struct {
	// Model is the classifier; required.
	Model model.Model
	// Train and Test are the sample sets.
	Train, Test []model.Sample
	// Perturbation is the Appendix C input DP mechanism.
	Perturbation InputPerturbation
	// Minibatch is b (default 1).
	Minibatch int
	// Schedule is η(t); required.
	Schedule optimizer.Schedule
	// Radius is the projection radius (non-positive disables).
	Radius float64
	// Lambda is the regularization weight.
	Lambda float64
	// Passes over the training data (default 1).
	Passes int
	// EvalEvery measures test error every this many samples
	// (default total/50).
	EvalEvery int
	// EvalSubset caps test samples per evaluation (0 = all).
	EvalSubset int
	// Seed drives shuffling and perturbation noise.
	Seed uint64
}

// RunSGD trains the centralized SGD baseline and returns its test-error
// curve vs samples used.
func RunSGD(cfg SGDConfig) (metrics.Series, error) {
	if cfg.Model == nil || cfg.Schedule == nil {
		return metrics.Series{}, fmt.Errorf("baseline: Model and Schedule are required")
	}
	if len(cfg.Train) == 0 {
		return metrics.Series{}, fmt.Errorf("baseline: empty training set")
	}
	if cfg.Minibatch < 1 {
		cfg.Minibatch = 1
	}
	if cfg.Passes < 1 {
		cfg.Passes = 1
	}
	total := cfg.Passes * len(cfg.Train)
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = total / 50
		if cfg.EvalEvery == 0 {
			cfg.EvalEvery = 1
		}
	}
	r := rng.New(cfg.Seed)
	classes, _ := cfg.Model.Shape()
	train := PerturbDataset(cfg.Train, classes, cfg.Perturbation, r)
	evalSet := cfg.Test
	if cfg.EvalSubset > 0 && cfg.EvalSubset < len(evalSet) {
		evalSet = dataset.Shuffled(evalSet, r)[:cfg.EvalSubset]
	}

	w := model.NewParams(cfg.Model)
	updater := &optimizer.SGD{Schedule: cfg.Schedule, Radius: cfg.Radius}
	curve := metrics.Series{Name: fmt.Sprintf("central-sgd-b%d", cfg.Minibatch)}
	batch := make([]model.Sample, 0, cfg.Minibatch)
	t := 0
	for n := 1; n <= total; n++ {
		batch = append(batch, train[(n-1)%len(train)])
		if len(batch) >= cfg.Minibatch {
			g := optimizer.AverageGradient(cfg.Model, w, batch, cfg.Lambda)
			t++
			updater.Update(w, g, t)
			batch = batch[:0]
		}
		if n%cfg.EvalEvery == 0 || n == total {
			curve.Append(float64(n), metrics.TestError(cfg.Model, w, evalSet))
		}
	}
	return curve, nil
}
