package baseline

import (
	"math"
	"testing"

	"github.com/crowdml/crowdml/internal/dataset"
	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/privacy"
	"github.com/crowdml/crowdml/internal/rng"
)

func smallTask(t *testing.T) (*dataset.Dataset, model.Model) {
	t.Helper()
	ds, err := dataset.MNISTLike(3000, 800, 11)
	if err != nil {
		t.Fatal(err)
	}
	return ds, model.NewLogisticRegression(ds.Classes, ds.Dim)
}

func TestSplitEvenly(t *testing.T) {
	p := SplitEvenly(privacy.Eps(10))
	if float64(p.Features) != 5 || float64(p.Labels) != 5 {
		t.Errorf("split = %+v, want 5/5", p)
	}
	zero := SplitEvenly(0)
	if zero.Features.Enabled() || zero.Labels.Enabled() {
		t.Error("disabled total should disable both parts")
	}
}

func TestPerturbDatasetDisabledIsCopy(t *testing.T) {
	ds, _ := smallTask(t)
	out := PerturbDataset(ds.Train[:10], ds.Classes, InputPerturbation{}, rng.New(1))
	for i := range out {
		if out[i].Y != ds.Train[i].Y || !linalg.Equal(out[i].X, ds.Train[i].X, 0) {
			t.Fatal("disabled perturbation changed data")
		}
		if &out[i].X[0] == &ds.Train[i].X[0] {
			t.Fatal("perturbed dataset must not alias originals")
		}
	}
}

func TestPerturbDatasetChangesData(t *testing.T) {
	ds, _ := smallTask(t)
	p := SplitEvenly(privacy.Eps(2))
	out := PerturbDataset(ds.Train[:200], ds.Classes, p, rng.New(1))
	flips := 0
	for i := range out {
		if linalg.Equal(out[i].X, ds.Train[i].X, 1e-12) {
			t.Fatal("features unperturbed")
		}
		if out[i].Y != ds.Train[i].Y {
			flips++
		}
	}
	// At ε_y = 1, keep probability = e^0.5/(e^0.5+9) ≈ 0.155 → most flip.
	if flips < 100 {
		t.Errorf("only %d/200 labels flipped at ε_y=1", flips)
	}
}

func TestRunBatchCleanReachesLowError(t *testing.T) {
	ds, m := smallTask(t)
	errRate, err := RunBatch(BatchConfig{Model: m, Train: ds.Train, Test: ds.Test, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if errRate > 0.2 {
		t.Errorf("clean batch error = %v, want < 0.2", errRate)
	}
}

func TestRunBatchPrivacyDegrades(t *testing.T) {
	ds, m := smallTask(t)
	clean, err := RunBatch(BatchConfig{Model: m, Train: ds.Train, Test: ds.Test, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	private, err := RunBatch(BatchConfig{
		Model: m, Train: ds.Train, Test: ds.Test,
		Perturbation: SplitEvenly(privacy.FromInv(0.1)), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The constant input noise of Appendix C has no mitigation — this is
	// the paper's core argument for gradient perturbation (Section IV-A).
	if private < clean+0.2 {
		t.Errorf("perturbed batch %v should be far worse than clean %v", private, clean)
	}
}

func TestRunBatchValidation(t *testing.T) {
	if _, err := RunBatch(BatchConfig{}); err == nil {
		t.Error("expected error for missing model")
	}
	_, m := smallTask(t)
	if _, err := RunBatch(BatchConfig{Model: m}); err == nil {
		t.Error("expected error for empty training set")
	}
}

func TestRunSGDCleanConverges(t *testing.T) {
	ds, m := smallTask(t)
	curve, err := RunSGD(SGDConfig{
		Model: m, Train: ds.Train, Test: ds.Test,
		Schedule: optimizer.InvSqrt{C: 50}, Passes: 2,
		EvalSubset: 400, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if curve.Final() > 0.2 {
		t.Errorf("clean central SGD final = %v, want < 0.2", curve.Final())
	}
}

func TestRunSGDPerturbedNearChance(t *testing.T) {
	ds, m := smallTask(t)
	curve, err := RunSGD(SGDConfig{
		Model: m, Train: ds.Train, Test: ds.Test,
		Perturbation: SplitEvenly(privacy.FromInv(0.1)),
		Minibatch:    10,
		Schedule:     optimizer.InvSqrt{C: 50}, Passes: 2,
		EvalSubset: 400, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 5: Central SGD on perturbed inputs sits near chance (~0.9)
	// regardless of b.
	if curve.Final() < 0.6 {
		t.Errorf("perturbed central SGD final = %v, want near chance", curve.Final())
	}
}

func TestRunSGDValidation(t *testing.T) {
	ds, m := smallTask(t)
	if _, err := RunSGD(SGDConfig{Train: ds.Train}); err == nil {
		t.Error("expected error for missing model/schedule")
	}
	if _, err := RunSGD(SGDConfig{Model: m, Schedule: optimizer.InvSqrt{C: 1}}); err == nil {
		t.Error("expected error for empty training set")
	}
}

func TestRunSGDMinibatchUpdateCount(t *testing.T) {
	// b=5 over 100 samples: eval grid must still cover the full x range.
	ds, m := smallTask(t)
	curve, err := RunSGD(SGDConfig{
		Model: m, Train: ds.Train[:100], Test: ds.Test[:50],
		Minibatch: 5, Schedule: optimizer.InvSqrt{C: 50},
		EvalEvery: 25, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if curve.Len() != 4 {
		t.Errorf("curve points = %d, want 4", curve.Len())
	}
	if last := curve.X[curve.Len()-1]; math.Abs(last-100) > 1e-9 {
		t.Errorf("last x = %v, want 100", last)
	}
}
