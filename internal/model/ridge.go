package model

import (
	"fmt"
	"math"

	"github.com/crowdml/crowdml/internal/linalg"
)

// RidgeRegression is a linear least-squares predictor with squared loss
// ½(w'x − t)². The paper's framework covers regression (Section III-A:
// "for regression, y can be a real number"); Crowd-ML only needs a loss
// whose per-sample gradient has bounded L1 norm, so the residual is clipped
// to [−ResidualClip, +ResidualClip] inside the gradient, bounding the
// single-sample gradient by ResidualClip·‖x‖₁ and the minibatch sensitivity
// by 2·ResidualClip/b.
type RidgeRegression struct {
	dim int
	// ResidualClip bounds |w'x − t| inside the gradient so the DP
	// sensitivity is finite. Must be positive.
	residualClip float64
	// tolerance used by Misclassified to turn a regression residual into
	// an error indicator for the server's progress counters.
	errTolerance float64
}

var _ Model = (*RidgeRegression)(nil)

// NewRidgeRegression returns a D-dimensional linear regressor whose
// gradient residuals are clipped to ±residualClip and whose Misclassified
// indicator fires when |prediction − target| > errTolerance.
func NewRidgeRegression(dim int, residualClip, errTolerance float64) *RidgeRegression {
	if dim < 1 || residualClip <= 0 || errTolerance < 0 {
		panic(fmt.Sprintf("model: invalid ridge params dim=%d clip=%v tol=%v",
			dim, residualClip, errTolerance))
	}
	return &RidgeRegression{dim: dim, residualClip: residualClip, errTolerance: errTolerance}
}

// Name implements Model.
func (m *RidgeRegression) Name() string { return "ridge-regression" }

// Shape implements Model: a single parameter row.
func (m *RidgeRegression) Shape() (int, int) { return 1, m.dim }

// GradientSensitivity implements Model: 2·ResidualClip.
func (m *RidgeRegression) GradientSensitivity() float64 { return 2 * m.residualClip }

// PredictValue returns the real-valued prediction w'x.
func (m *RidgeRegression) PredictValue(w *linalg.Matrix, x []float64) float64 {
	return linalg.Dot(w.Row(0), x)
}

// Predict implements Model. Classification semantics are meaningless for a
// regressor; it returns 0 so the interface stays total.
func (m *RidgeRegression) Predict(w *linalg.Matrix, x []float64) int { return 0 }

// Misclassified implements Model using the error tolerance.
func (m *RidgeRegression) Misclassified(w *linalg.Matrix, s Sample) bool {
	return math.Abs(m.PredictValue(w, s.X)-s.T) > m.errTolerance
}

// Loss implements Model: ½(w'x − t)² (unclipped; clipping only affects the
// gradient, mirroring standard DP-SGD practice).
func (m *RidgeRegression) Loss(w *linalg.Matrix, s Sample) float64 {
	r := m.PredictValue(w, s.X) - s.T
	return 0.5 * r * r
}

// AddGradient implements Model: grad += clip(w'x − t)·x.
func (m *RidgeRegression) AddGradient(w, grad *linalg.Matrix, s Sample) {
	r := m.PredictValue(w, s.X) - s.T
	if r > m.residualClip {
		r = m.residualClip
	} else if r < -m.residualClip {
		r = -m.residualClip
	}
	if r == 0 {
		return
	}
	linalg.Axpy(r, s.X, grad.Row(0))
}
