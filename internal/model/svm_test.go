package model

import (
	"math"
	"testing"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/rng"
)

func TestSVMLossZeroWhenMarginSatisfied(t *testing.T) {
	m := NewLinearSVM(3, 2)
	w := NewParams(m)
	w.Set(1, 0, 10) // class 1 strongly preferred when x[0] = 1
	s := Sample{X: []float64{1, 0}, Y: 1}
	if got := m.Loss(w, s); got != 0 {
		t.Errorf("Loss = %v, want 0 (margin satisfied)", got)
	}
	g := NewParams(m)
	m.AddGradient(w, g, s)
	if g.Norm1() != 0 {
		t.Errorf("gradient should be zero when margin satisfied, got L1=%v", g.Norm1())
	}
}

func TestSVMLossAtZeroParamsIsOne(t *testing.T) {
	m := NewLinearSVM(4, 3)
	w := NewParams(m)
	s := Sample{X: []float64{0.5, 0.3, 0.2}, Y: 2}
	if got := m.Loss(w, s); math.Abs(got-1) > 1e-12 {
		t.Errorf("Loss at w=0 is %v, want 1 (pure margin)", got)
	}
}

func TestSVMSubgradientStructure(t *testing.T) {
	m := NewLinearSVM(3, 2)
	w := NewParams(m)
	w.Set(2, 0, 1) // class 2 is the violator for x = e0, y = 0
	s := Sample{X: []float64{1, 0}, Y: 0}
	g := NewParams(m)
	m.AddGradient(w, g, s)
	if g.At(2, 0) != 1 || g.At(0, 0) != -1 {
		t.Errorf("subgradient rows wrong: violator row %v, true row %v",
			g.Row(2), g.Row(0))
	}
	if g.At(1, 0) != 0 {
		t.Error("non-violating row should have zero gradient")
	}
}

func TestSVMPerSampleGradientL1Bound(t *testing.T) {
	r := rng.New(6)
	m := NewLinearSVM(10, 20)
	for trial := 0; trial < 100; trial++ {
		w := randomParams(r, m)
		s := randomSample(r, 10, 20)
		g := NewParams(m)
		m.AddGradient(w, g, s)
		if n := g.Norm1(); n > 2+1e-9 {
			t.Fatalf("per-sample SVM gradient L1 = %v > 2", n)
		}
	}
}

func TestSVMTrainsOnSeparableData(t *testing.T) {
	r := rng.New(7)
	m := NewLinearSVM(2, 2)
	w := NewParams(m)
	makeSample := func() Sample {
		x := []float64{r.Uniform(-1, 1), r.Uniform(-1, 1)}
		linalg.NormalizeL1(x)
		y := 0
		if x[0] > 0 {
			y = 1
		}
		return Sample{X: x, Y: y}
	}
	for i := 1; i <= 4000; i++ {
		s := makeSample()
		g := NewParams(m)
		m.AddGradient(w, g, s)
		w.AddScaled(-0.2, g)
	}
	errs := 0
	const n = 500
	for i := 0; i < n; i++ {
		if m.Misclassified(w, makeSample()) {
			errs++
		}
	}
	if frac := float64(errs) / n; frac > 0.08 {
		t.Errorf("SVM test error %v on separable data", frac)
	}
}

func TestSVMSensitivityDeclared(t *testing.T) {
	if got := NewLinearSVM(3, 3).GradientSensitivity(); got != 4 {
		t.Errorf("GradientSensitivity = %v, want 4", got)
	}
}

func TestNewLinearSVMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for D=0")
		}
	}()
	NewLinearSVM(2, 0)
}
