package model

import (
	"fmt"

	"github.com/crowdml/crowdml/internal/linalg"
)

// LinearSVM is a multiclass linear support-vector machine with the
// Crammer–Singer hinge loss:
//
//	loss = max(0, 1 + max_{k≠y} w_k'x − w_y'x)
//
// The subgradient moves mass from the true class row to the most-violating
// row, so its single-sample L1 norm is at most 2‖x‖₁ ≤ 2, giving the same
// 4/b minibatch sensitivity as logistic regression. The paper lists SVM as
// one of the loss functions the framework supports (Section III-A).
type LinearSVM struct {
	classes int
	dim     int
}

var _ Model = (*LinearSVM)(nil)

// NewLinearSVM returns a C-class linear SVM over D-dimensional features.
func NewLinearSVM(classes, dim int) *LinearSVM {
	if classes < 2 || dim < 1 {
		panic(fmt.Sprintf("model: invalid SVM shape C=%d D=%d", classes, dim))
	}
	return &LinearSVM{classes: classes, dim: dim}
}

// Name implements Model.
func (m *LinearSVM) Name() string { return "multiclass-linear-svm" }

// Shape implements Model.
func (m *LinearSVM) Shape() (int, int) { return m.classes, m.dim }

// GradientSensitivity implements Model.
func (m *LinearSVM) GradientSensitivity() float64 { return 4 }

// Predict implements Model.
func (m *LinearSVM) Predict(w *linalg.Matrix, x []float64) int {
	scores := make([]float64, m.classes)
	w.MulVec(x, scores)
	return linalg.ArgMax(scores)
}

// Misclassified implements Model.
func (m *LinearSVM) Misclassified(w *linalg.Matrix, s Sample) bool {
	return m.Predict(w, s.X) != s.Y
}

// violator returns the highest-scoring class other than y and its margin
// violation value 1 + w_k'x − w_y'x.
func (m *LinearSVM) violator(w *linalg.Matrix, s Sample) (k int, violation float64) {
	scores := make([]float64, m.classes)
	w.MulVec(s.X, scores)
	k = -1
	best := 0.0
	for c := 0; c < m.classes; c++ {
		if c == s.Y {
			continue
		}
		if k == -1 || scores[c] > best {
			k, best = c, scores[c]
		}
	}
	return k, 1 + best - scores[s.Y]
}

// Loss implements Model.
func (m *LinearSVM) Loss(w *linalg.Matrix, s Sample) float64 {
	_, v := m.violator(w, s)
	if v < 0 {
		return 0
	}
	return v
}

// AddGradient implements Model. Subgradient: if the margin is violated,
// grad_{k*} += x and grad_y −= x; otherwise zero.
func (m *LinearSVM) AddGradient(w, grad *linalg.Matrix, s Sample) {
	k, v := m.violator(w, s)
	if v <= 0 || k < 0 {
		return
	}
	linalg.Axpy(1, s.X, grad.Row(k))
	linalg.Axpy(-1, s.X, grad.Row(s.Y))
}
