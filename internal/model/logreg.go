package model

import (
	"fmt"

	"github.com/crowdml/crowdml/internal/linalg"
)

// LogisticRegression is the multiclass logistic-regression model of Table I:
//
//	prediction: argmax_k w_k'x
//	loss:       −w_y'x + log Σ_l exp(w_l'x)
//	gradient:   ∇_{w_k} = x·(P(y=k|x) − I[y=k])
//
// Its single-sample gradient has L1 norm at most 2‖x‖₁ (the row of posterior
// coefficients has absolute sum 2(1−P_y) ≤ 2, Appendix A), so the averaged
// minibatch gradient has sensitivity 4/b — the constant in Eq. (10).
type LogisticRegression struct {
	classes int
	dim     int
}

var _ Model = (*LogisticRegression)(nil)

// NewLogisticRegression returns a C-class logistic regression over
// D-dimensional features. It panics if C < 2 or D < 1 (construction-time
// programming errors).
func NewLogisticRegression(classes, dim int) *LogisticRegression {
	if classes < 2 || dim < 1 {
		panic(fmt.Sprintf("model: invalid logistic regression shape C=%d D=%d", classes, dim))
	}
	return &LogisticRegression{classes: classes, dim: dim}
}

// Name implements Model.
func (m *LogisticRegression) Name() string { return "multiclass-logistic-regression" }

// Shape implements Model.
func (m *LogisticRegression) Shape() (int, int) { return m.classes, m.dim }

// GradientSensitivity implements Model (Theorem 1: S = 4).
func (m *LogisticRegression) GradientSensitivity() float64 { return 4 }

// scores computes w_k'x for every class into dst.
func (m *LogisticRegression) scores(w *linalg.Matrix, x []float64, dst []float64) {
	w.MulVec(x, dst)
}

// Predict implements Model.
func (m *LogisticRegression) Predict(w *linalg.Matrix, x []float64) int {
	scores := make([]float64, m.classes)
	m.scores(w, x, scores)
	return linalg.ArgMax(scores)
}

// Misclassified implements Model.
func (m *LogisticRegression) Misclassified(w *linalg.Matrix, s Sample) bool {
	return m.Predict(w, s.X) != s.Y
}

// Loss implements Model: −w_y'x + logΣexp(w_l'x).
func (m *LogisticRegression) Loss(w *linalg.Matrix, s Sample) float64 {
	scores := make([]float64, m.classes)
	m.scores(w, s.X, scores)
	return linalg.LogSumExp(scores) - scores[s.Y]
}

// AddGradient implements Model: grad_k += x·(P_k − I[y=k]).
func (m *LogisticRegression) AddGradient(w, grad *linalg.Matrix, s Sample) {
	probs := make([]float64, m.classes)
	m.scores(w, s.X, probs)
	linalg.Softmax(probs, probs)
	for k := 0; k < m.classes; k++ {
		coef := probs[k]
		if k == s.Y {
			coef -= 1
		}
		if coef == 0 {
			continue
		}
		linalg.Axpy(coef, s.X, grad.Row(k))
	}
}

// Posterior writes P(y=k|x;w) for all k into dst (length C). Exposed for
// tests and for the analysis benchmarks.
func (m *LogisticRegression) Posterior(w *linalg.Matrix, x []float64, dst []float64) {
	m.scores(w, x, dst)
	linalg.Softmax(dst, dst)
}
