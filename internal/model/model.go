// Package model defines the classifier/predictor abstraction of Crowd-ML
// (Section III-A of the paper) and three concrete instances:
//
//   - multiclass logistic regression (Table I, used in every experiment),
//   - multiclass linear SVM with the Crammer–Singer hinge subgradient,
//   - ridge (L2) linear regression.
//
// A model knows how to compute per-sample loss and (sub)gradients against a
// parameter matrix W ∈ R^{C×D}, and exposes the L1 global-sensitivity bound
// of its single-sample gradient that the privacy mechanism of Theorem 1
// requires. All sensitivity bounds assume ‖x‖₁ ≤ 1 (the paper's
// normalization precondition, enforced by the dataset pipeline).
package model

import (
	"errors"
	"fmt"

	"github.com/crowdml/crowdml/internal/linalg"
)

// Sample is one (feature vector, target) pair. Classification models read Y;
// the regression model reads T.
type Sample struct {
	X []float64 // feature vector, ‖X‖₁ ≤ 1 for DP guarantees to hold
	Y int       // class label in [0, C)
	T float64   // regression target
}

// Model is a learnable classifier or predictor in the empirical-risk
// framework of Eq. (2). Implementations must be stateless: all learned state
// lives in the parameter matrix so that server and devices can exchange it.
type Model interface {
	// Name identifies the model (for logs and experiment output).
	Name() string
	// Shape returns the parameter matrix shape: classes (rows) × dim (cols).
	Shape() (classes, dim int)
	// Loss returns l(h(x;w), y) for one sample, excluding regularization.
	Loss(w *linalg.Matrix, s Sample) float64
	// AddGradient accumulates the per-sample (sub)gradient ∇_w l into grad.
	// The λw regularization term is NOT included; the minibatch averaging
	// step adds it once (Device Routine 2: g̃ = 1/n Σ gᵢ + λw).
	AddGradient(w, grad *linalg.Matrix, s Sample)
	// Predict returns the predicted class index for x.
	Predict(w *linalg.Matrix, x []float64) int
	// Misclassified reports whether the model's prediction for s is wrong
	// (this feeds the n_e counter of Algorithm 1).
	Misclassified(w *linalg.Matrix, s Sample) bool
	// GradientSensitivity returns S such that two minibatches of size b
	// differing in one sample have averaged gradients with
	// ‖g̃ − g̃'‖₁ ≤ S/b (Theorem 1 proves S = 4 for logistic regression).
	GradientSensitivity() float64
}

// ErrBadShape is returned when a parameter matrix does not match a model.
var ErrBadShape = errors.New("model: parameter shape mismatch")

// CheckShape verifies that w matches the model's declared shape.
func CheckShape(m Model, w *linalg.Matrix) error {
	c, d := m.Shape()
	if w.Rows() != c || w.Cols() != d {
		return fmt.Errorf("model %s wants %dx%d, got %dx%d: %w",
			m.Name(), c, d, w.Rows(), w.Cols(), ErrBadShape)
	}
	return nil
}

// NewParams allocates a zero parameter matrix of the model's shape.
func NewParams(m Model) *linalg.Matrix {
	c, d := m.Shape()
	return linalg.NewMatrix(c, d)
}

// Risk computes the regularized empirical risk of Eq. (2) over samples:
// (1/N) Σ l(h(x;w), y) + (λ/2)‖w‖².
func Risk(m Model, w *linalg.Matrix, samples []Sample, lambda float64) float64 {
	if len(samples) == 0 {
		return 0.5 * lambda * linalg.Norm2Sq(w.Data())
	}
	var sum float64
	for _, s := range samples {
		sum += m.Loss(w, s)
	}
	return sum/float64(len(samples)) + 0.5*lambda*linalg.Norm2Sq(w.Data())
}
