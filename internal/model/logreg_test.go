package model

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/rng"
)

// numericalGradient estimates ∇_w Loss by central differences.
func numericalGradient(m Model, w *linalg.Matrix, s Sample) *linalg.Matrix {
	const h = 1e-6
	c, d := m.Shape()
	g := linalg.NewMatrix(c, d)
	for i := 0; i < c; i++ {
		for j := 0; j < d; j++ {
			orig := w.At(i, j)
			w.Set(i, j, orig+h)
			lp := m.Loss(w, s)
			w.Set(i, j, orig-h)
			lm := m.Loss(w, s)
			w.Set(i, j, orig)
			g.Set(i, j, (lp-lm)/(2*h))
		}
	}
	return g
}

func randomSample(r *rng.RNG, classes, dim int) Sample {
	x := make([]float64, dim)
	for i := range x {
		x[i] = r.Uniform(-1, 1)
	}
	linalg.NormalizeL1(x)
	return Sample{X: x, Y: r.Intn(classes)}
}

func randomParams(r *rng.RNG, m Model) *linalg.Matrix {
	w := NewParams(m)
	for i := range w.Data() {
		w.Data()[i] = r.Uniform(-1, 1)
	}
	return w
}

func TestLogRegGradientMatchesNumerical(t *testing.T) {
	r := rng.New(1)
	m := NewLogisticRegression(4, 6)
	for trial := 0; trial < 20; trial++ {
		w := randomParams(r, m)
		s := randomSample(r, 4, 6)
		analytic := NewParams(m)
		m.AddGradient(w, analytic, s)
		numeric := numericalGradient(m, w, s)
		for i := range analytic.Data() {
			if math.Abs(analytic.Data()[i]-numeric.Data()[i]) > 1e-4 {
				t.Fatalf("trial %d: gradient mismatch at %d: analytic %v numeric %v",
					trial, i, analytic.Data()[i], numeric.Data()[i])
			}
		}
	}
}

func TestLogRegPredictUsesArgmaxScore(t *testing.T) {
	m := NewLogisticRegression(3, 2)
	w := NewParams(m)
	w.Set(2, 0, 5) // class 2 wins when x[0] > 0
	if got := m.Predict(w, []float64{1, 0}); got != 2 {
		t.Errorf("Predict = %d, want 2", got)
	}
	if got := m.Predict(w, []float64{-1, 0}); got == 2 {
		t.Errorf("Predict = %d, want not 2", got)
	}
}

func TestLogRegLossAtZeroIsLogC(t *testing.T) {
	m := NewLogisticRegression(10, 5)
	w := NewParams(m)
	s := Sample{X: []float64{0.2, 0.2, 0.2, 0.2, 0.2}, Y: 3}
	if got, want := m.Loss(w, s), math.Log(10); math.Abs(got-want) > 1e-12 {
		t.Errorf("Loss at w=0 is %v, want log(10)=%v", got, want)
	}
}

func TestLogRegPosteriorSumsToOne(t *testing.T) {
	r := rng.New(2)
	m := NewLogisticRegression(5, 8)
	w := randomParams(r, m)
	s := randomSample(r, 5, 8)
	probs := make([]float64, 5)
	m.Posterior(w, s.X, probs)
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("posterior out of range: %v", probs)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("posterior sums to %v", sum)
	}
}

// averagedGradient computes g̃ = (1/b)Σ∇l over the minibatch (no λw term),
// exactly as Device Routine 2 does.
func averagedGradient(m Model, w *linalg.Matrix, batch []Sample) *linalg.Matrix {
	g := NewParams(m)
	for _, s := range batch {
		m.AddGradient(w, g, s)
	}
	g.Scale(1 / float64(len(batch)))
	return g
}

// TestLogRegSensitivityBound is the central property behind Theorem 1:
// for any two minibatches of size b differing in exactly one sample (with
// ‖x‖₁ ≤ 1), the averaged gradients differ by at most 4/b in L1 norm.
func TestLogRegSensitivityBound(t *testing.T) {
	r := rng.New(3)
	m := NewLogisticRegression(6, 10)
	f := func(seed uint32, bRaw uint8) bool {
		local := rng.New(uint64(seed))
		b := 1 + int(bRaw%32)
		w := randomParams(local, m)
		batch := make([]Sample, b)
		for i := range batch {
			batch[i] = randomSample(local, 6, 10)
		}
		g1 := averagedGradient(m, w, batch)
		// Replace one sample (a neighboring dataset).
		idx := local.Intn(b)
		batch[idx] = randomSample(local, 6, 10)
		g2 := averagedGradient(m, w, batch)
		diff := make([]float64, len(g1.Data()))
		linalg.Sub(g1.Data(), g2.Data(), diff)
		bound := m.GradientSensitivity() / float64(b)
		return linalg.Norm1(diff) <= bound*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: nil}); err != nil {
		t.Error(err)
	}
	_ = r
}

// Per-sample gradient L1 norm is at most 2 (‖x‖₁ ≤ 1): the row-coefficient
// bound of Appendix A.
func TestLogRegPerSampleGradientL1Bound(t *testing.T) {
	r := rng.New(4)
	m := NewLogisticRegression(10, 50)
	for trial := 0; trial < 100; trial++ {
		w := randomParams(r, m)
		s := randomSample(r, 10, 50)
		g := NewParams(m)
		m.AddGradient(w, g, s)
		if n := g.Norm1(); n > 2+1e-9 {
			t.Fatalf("per-sample gradient L1 = %v > 2", n)
		}
	}
}

func TestLogRegTrainsOnSeparableData(t *testing.T) {
	// Two well-separated classes in 2D must be learnable by plain SGD.
	r := rng.New(5)
	m := NewLogisticRegression(2, 2)
	w := NewParams(m)
	makeSample := func() Sample {
		y := r.Intn(2)
		sign := float64(2*y - 1)
		x := []float64{sign * (0.5 + 0.1*r.Gaussian()), 0.1 * r.Gaussian()}
		linalg.NormalizeL1(x)
		// NormalizeL1 can flip nothing; keep label consistent with x[0] sign.
		if x[0] >= 0 {
			y = 1
		} else {
			y = 0
		}
		return Sample{X: x, Y: y}
	}
	for i := 1; i <= 2000; i++ {
		s := makeSample()
		g := NewParams(m)
		m.AddGradient(w, g, s)
		w.AddScaled(-0.5, g)
	}
	errs := 0
	const n = 500
	for i := 0; i < n; i++ {
		s := makeSample()
		if m.Misclassified(w, s) {
			errs++
		}
	}
	if frac := float64(errs) / n; frac > 0.05 {
		t.Errorf("test error %v after training on separable data", frac)
	}
}

func TestNewLogisticRegressionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for C=1")
		}
	}()
	NewLogisticRegression(1, 5)
}

func TestCheckShape(t *testing.T) {
	m := NewLogisticRegression(3, 4)
	if err := CheckShape(m, linalg.NewMatrix(3, 4)); err != nil {
		t.Errorf("CheckShape on correct shape: %v", err)
	}
	if err := CheckShape(m, linalg.NewMatrix(4, 3)); err == nil {
		t.Error("CheckShape should reject wrong shape")
	}
}

func TestRisk(t *testing.T) {
	m := NewLogisticRegression(2, 2)
	w := NewParams(m)
	w.Set(0, 0, 1)
	// Empty sample set: only the regularizer.
	if got := Risk(m, w, nil, 2.0); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Risk(empty) = %v, want 1.0", got)
	}
	s := Sample{X: []float64{1, 0}, Y: 0}
	r := Risk(m, w, []Sample{s}, 0)
	if math.Abs(r-m.Loss(w, s)) > 1e-12 {
		t.Errorf("Risk = %v, want %v", r, m.Loss(w, s))
	}
}
