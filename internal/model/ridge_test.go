package model

import (
	"math"
	"testing"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/rng"
)

func TestRidgePredictValue(t *testing.T) {
	m := NewRidgeRegression(2, 1, 0.1)
	w := NewParams(m)
	w.Set(0, 0, 2)
	w.Set(0, 1, -1)
	got := m.PredictValue(w, []float64{3, 4})
	if got != 2 {
		t.Errorf("PredictValue = %v, want 2", got)
	}
}

func TestRidgeGradientMatchesNumericalInsideClip(t *testing.T) {
	// With a generous clip the analytic gradient equals the numeric one.
	r := rng.New(8)
	m := NewRidgeRegression(4, 100, 0.1)
	for trial := 0; trial < 20; trial++ {
		w := randomParams(r, m)
		s := randomSample(r, 2, 4)
		s.T = r.Uniform(-1, 1)
		analytic := NewParams(m)
		m.AddGradient(w, analytic, s)
		numeric := numericalGradient(m, w, s)
		for i := range analytic.Data() {
			if math.Abs(analytic.Data()[i]-numeric.Data()[i]) > 1e-4 {
				t.Fatalf("gradient mismatch at %d: %v vs %v",
					i, analytic.Data()[i], numeric.Data()[i])
			}
		}
	}
}

func TestRidgeGradientClipped(t *testing.T) {
	m := NewRidgeRegression(1, 0.5, 0.1)
	w := NewParams(m)
	w.Set(0, 0, 100) // huge residual
	s := Sample{X: []float64{1}, T: 0}
	g := NewParams(m)
	m.AddGradient(w, g, s)
	if got := g.At(0, 0); got != 0.5 {
		t.Errorf("clipped gradient = %v, want 0.5", got)
	}
	if got := m.GradientSensitivity(); got != 1.0 {
		t.Errorf("GradientSensitivity = %v, want 2*0.5", got)
	}
}

func TestRidgeMisclassified(t *testing.T) {
	m := NewRidgeRegression(1, 1, 0.25)
	w := NewParams(m)
	w.Set(0, 0, 1)
	in := Sample{X: []float64{1}, T: 1.1}  // |1-1.1| < 0.25
	out := Sample{X: []float64{1}, T: 2.0} // |1-2| > 0.25
	if m.Misclassified(w, in) {
		t.Error("within tolerance should not be misclassified")
	}
	if !m.Misclassified(w, out) {
		t.Error("outside tolerance should be misclassified")
	}
}

func TestRidgeLearnsLinearFunction(t *testing.T) {
	// Fit t = 0.8·x0 − 0.4·x1 by SGD.
	r := rng.New(9)
	m := NewRidgeRegression(2, 5, 0.05)
	w := NewParams(m)
	truth := []float64{0.8, -0.4}
	for i := 0; i < 20000; i++ {
		x := []float64{r.Uniform(-1, 1), r.Uniform(-1, 1)}
		s := Sample{X: x, T: linalg.Dot(truth, x)}
		g := NewParams(m)
		m.AddGradient(w, g, s)
		w.AddScaled(-0.1, g)
	}
	if !linalg.Equal(w.Row(0), truth, 0.02) {
		t.Errorf("learned %v, want %v", w.Row(0), truth)
	}
}

func TestRidgePredictIsZero(t *testing.T) {
	m := NewRidgeRegression(2, 1, 0.1)
	if got := m.Predict(NewParams(m), []float64{1, 1}); got != 0 {
		t.Errorf("Predict = %d, want 0", got)
	}
}

func TestNewRidgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad clip")
		}
	}()
	NewRidgeRegression(2, 0, 0.1)
}
