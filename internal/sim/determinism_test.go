package sim

import (
	"math"
	"testing"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/simnet"
)

// paramsBits compares two parameter matrices at the bit level — the
// strongest possible "same trajectory" check.
func paramsBits(t *testing.T, a, b *linalg.Matrix, what string) {
	t.Helper()
	da, db := a.Data(), b.Data()
	if len(da) != len(db) {
		t.Fatalf("%s: parameter lengths differ: %d vs %d", what, len(da), len(db))
	}
	for i := range da {
		if math.Float64bits(da[i]) != math.Float64bits(db[i]) {
			t.Fatalf("%s: params diverge at [%d]: %v vs %v", what, i, da[i], db[i])
		}
	}
}

// TestRunCrowdBitIdenticalSameSeed pins the full determinism contract:
// two same-seed runs agree on every observable bit for bit, not just on
// the rounded curve.
func TestRunCrowdBitIdenticalSameSeed(t *testing.T) {
	ds, m := smallTask(t)
	cfg := baseCfg(ds, m)
	cfg.Delay = simnet.Uniform{Max: 40}
	a, err := RunCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	paramsBits(t, a.FinalParams, b.FinalParams, "same seed")
	if a.Checkins != b.Checkins || a.MeanStaleness != b.MeanStaleness || a.DroppedStale != b.DroppedStale {
		t.Errorf("counters diverged: (%d, %v, %d) vs (%d, %v, %d)",
			a.Checkins, a.MeanStaleness, a.DroppedStale, b.Checkins, b.MeanStaleness, b.DroppedStale)
	}
	if a.Curve.Len() != b.Curve.Len() {
		t.Fatalf("curve lengths differ: %d vs %d", a.Curve.Len(), b.Curve.Len())
	}
	for i := range a.Curve.Y {
		if a.Curve.X[i] != b.Curve.X[i] || a.Curve.Y[i] != b.Curve.Y[i] {
			t.Fatalf("curves diverge at point %d", i)
		}
	}
}

// TestRunCrowdEvalSubsetStreamIsolation is the regression test for the
// shared-stream seed leak: evaluation sub-sampling draws from its own
// stream, so changing EvalSubset must not perturb the data assignment,
// arrival schedule or noise — the final parameters must be bit-identical.
// (Before stream isolation, the eval shuffle consumed draws from the one
// shared generator and silently reshuffled the whole run.)
func TestRunCrowdEvalSubsetStreamIsolation(t *testing.T) {
	ds, m := smallTask(t)
	cfg := baseCfg(ds, m)
	full := cfg
	full.EvalSubset = 0
	sub := cfg
	sub.EvalSubset = 100
	a, err := RunCrowd(full)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCrowd(sub)
	if err != nil {
		t.Fatal(err)
	}
	paramsBits(t, a.FinalParams, b.FinalParams, "EvalSubset change")
	if a.Checkins != b.Checkins {
		t.Errorf("EvalSubset change altered the schedule: %d vs %d checkins", a.Checkins, b.Checkins)
	}
}

// TestRunCrowdDelayStreamIsolation checks the delay model draws from a
// dedicated stream: switching NoDelay (which consumes no draws) for a
// vanishingly small uniform delay (which consumes three per flush) keeps
// event ordering — and therefore the learning trajectory — bit-identical.
// Only the delay stream's consumption changes; nothing else may notice.
func TestRunCrowdDelayStreamIsolation(t *testing.T) {
	ds, m := smallTask(t)
	cfg := baseCfg(ds, m)
	none := cfg
	none.Delay = simnet.NoDelay{}
	tiny := cfg
	tiny.Delay = simnet.Uniform{Max: 1e-12}
	a, err := RunCrowd(none)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCrowd(tiny)
	if err != nil {
		t.Fatal(err)
	}
	paramsBits(t, a.FinalParams, b.FinalParams, "tiny-delay swap")
	if a.Checkins != b.Checkins || a.MeanStaleness != b.MeanStaleness {
		t.Errorf("tiny delays changed the schedule: (%d, %v) vs (%d, %v)",
			a.Checkins, a.MeanStaleness, b.Checkins, b.MeanStaleness)
	}
}

// TestRunDecentralBitIdenticalSameSeed pins the decentralized baseline's
// determinism at full precision.
func TestRunDecentralBitIdenticalSameSeed(t *testing.T) {
	ds, m := smallTask(t)
	cfg := DecentralConfig{
		Model: m, Train: ds.Train, Test: ds.Test,
		Devices: 40, Schedule: optimizer.InvSqrt{C: 50}, Passes: 1,
		EvalDevices: 10, EvalSubset: 200, Seed: 11,
	}
	a, err := RunDecentral(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDecentral(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("curve lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Y {
		if math.Float64bits(a.Y[i]) != math.Float64bits(b.Y[i]) {
			t.Fatalf("same-seed decentral curves diverge at point %d", i)
		}
	}
}
