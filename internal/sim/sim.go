// Package sim is the simulated-environment harness of Section V-C: it
// drives M virtual Crowd-ML devices over a dataset with controllable
// privacy levels, minibatch sizes, and asynchronous communication delays,
// measuring test error as a function of the iteration count (= number of
// samples used), exactly the x-axis of Figs. 4–9.
//
// Time is discrete in "global sample" units: one step = one sample
// generated somewhere in the crowd. Communication delays (package simnet)
// are expressed in the same units, the paper's Δ = τ·M·F_s convention.
// Each minibatch flush goes through three delayed legs:
//
//	request  (device → server): the checkout request travels;
//	checkout (server → device): the device receives w as of the moment the
//	                            server processed the request;
//	checkin  (device → server): the sanitized gradient travels back and is
//	                            applied on arrival.
//
// Gradients are therefore computed against parameters that may be many
// updates stale — the delayed asynchronous SGD whose convergence the paper
// analyzes in Section IV-B3.
package sim

import (
	"container/heap"
	"fmt"

	"github.com/crowdml/crowdml/internal/dataset"
	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/metrics"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/privacy"
	"github.com/crowdml/crowdml/internal/rng"
	"github.com/crowdml/crowdml/internal/simnet"
)

// CrowdConfig configures one simulated Crowd-ML run.
type CrowdConfig struct {
	// Model is the classifier; required.
	Model model.Model
	// Train and Test are the sample sets; Train is dealt to devices.
	Train, Test []model.Sample
	// Devices is M, the crowd size (paper: 1000). Must be ≥ 1.
	Devices int
	// Minibatch is b. Defaults to 1.
	Minibatch int
	// Lambda is the regularization weight λ.
	Lambda float64
	// Schedule is η(t); required (paper default: InvSqrt).
	Schedule optimizer.Schedule
	// Radius is the projection-ball radius (non-positive disables).
	Radius float64
	// Budget sets the device-local privacy levels (Laplace mechanisms).
	Budget privacy.Budget
	// GaussianBudget, if enabled, replaces the Eq. (10) Laplace gradient
	// mechanism with the (ε, δ) Gaussian variant of the paper's footnote 1.
	// Budget.Gradient is ignored when this is set.
	GaussianBudget GaussianBudget
	// Updater optionally overrides the server-side update rule (Remark 3:
	// more recent update methods can replace Eq. (3) without affecting
	// differential privacy). Nil uses projected SGD with Schedule/Radius.
	Updater optimizer.Updater
	// Delay is the per-leg communication delay model (nil = no delay).
	Delay simnet.DelayModel
	// StaleDropThreshold, if positive, makes the server discard gradients
	// whose staleness (server updates between checkout and arrival)
	// exceeds the threshold — the drop-stale ablation of DESIGN.md §5.
	StaleDropThreshold int
	// Passes is the number of passes through the training data
	// (paper: up to five). Defaults to 1.
	Passes int
	// EvalEvery measures test error every this many global samples.
	// Defaults to total/50.
	EvalEvery int
	// EvalSubset caps the number of test samples per evaluation
	// (0 = all). Sub-sampling keeps large sweeps fast.
	EvalSubset int
	// Seed drives all randomness (assignment, device order, noise,
	// delays); distinct seeds give independent trials.
	Seed uint64
}

// GaussianBudget selects the (ε, δ) Gaussian gradient mechanism
// (footnote 1 of the paper). Enabled when Eps > 0 and Delta > 0.
type GaussianBudget struct {
	// Eps is ε.
	Eps privacy.Eps
	// Delta is δ.
	Delta float64
}

// Enabled reports whether the Gaussian mechanism should be used.
func (g GaussianBudget) Enabled() bool { return g.Eps.Enabled() && g.Delta > 0 }

// Result is the outcome of one run.
type Result struct {
	// Curve is test error vs iteration (= samples used).
	Curve metrics.Series
	// FinalParams is the server's final parameter matrix.
	FinalParams *linalg.Matrix
	// Checkins is the number of server updates performed.
	Checkins int
	// MeanStaleness is the average number of server updates that happened
	// between a gradient's checkout and its application.
	MeanStaleness float64
	// DroppedStale counts gradients discarded by StaleDropThreshold.
	DroppedStale int
}

// event is a scheduled communication arrival.
type event struct {
	at     float64 // global-sample time
	seq    int     // tiebreaker preserving FIFO order
	kind   eventKind
	device int
	batch  []model.Sample // for checkout events: the minibatch to process
	grad   *linalg.Matrix // for apply events: the sanitized gradient
	coIter int            // server iteration at checkout (staleness metric)
}

type eventKind int

const (
	evCheckout eventKind = iota + 1
	evApply
)

// eventQueue is a min-heap on (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// RunCrowd executes one simulated Crowd-ML run.
func RunCrowd(cfg CrowdConfig) (*Result, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("sim: Model is required")
	}
	if cfg.Schedule == nil {
		return nil, fmt.Errorf("sim: Schedule is required")
	}
	if cfg.Devices < 1 {
		return nil, fmt.Errorf("sim: Devices must be ≥ 1")
	}
	if len(cfg.Train) == 0 {
		return nil, fmt.Errorf("sim: empty training set")
	}
	if cfg.Minibatch < 1 {
		cfg.Minibatch = 1
	}
	if cfg.Passes < 1 {
		cfg.Passes = 1
	}
	delay := cfg.Delay
	if delay == nil {
		delay = simnet.NoDelay{}
	}
	total := cfg.Passes * len(cfg.Train)
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = total / 50
		if cfg.EvalEvery == 0 {
			cfg.EvalEvery = 1
		}
	}

	// Every randomness consumer draws from its own split stream, in a
	// fixed order: a config change that alters how many values one
	// consumer draws (a different eval subset, a delay model that skips
	// draws) must not shift any other consumer's sequence and silently
	// change the schedule. Same-seed runs are bit-identical, and
	// same-seed runs that differ only in one knob differ only through
	// that knob's effect.
	root := rng.New(cfg.Seed)
	assignRNG := root.Split()
	evalRNG := root.Split()
	arrivalRNG := root.Split()
	delayRNG := root.Split()
	noiseRoot := root.Split()

	shards := dataset.Assign(cfg.Train, cfg.Devices, assignRNG)
	evalSet := cfg.Test
	if cfg.EvalSubset > 0 && cfg.EvalSubset < len(evalSet) {
		evalSet = dataset.Shuffled(evalSet, evalRNG)[:cfg.EvalSubset]
	}

	// Per-device state.
	type deviceState struct {
		pos    int // next index into shard (cycles)
		buffer []model.Sample
		noise  *rng.RNG
	}
	devs := make([]deviceState, cfg.Devices)
	for i := range devs {
		devs[i].noise = noiseRoot.Split()
		devs[i].buffer = make([]model.Sample, 0, cfg.Minibatch)
	}

	w := model.NewParams(cfg.Model)
	updater := cfg.Updater
	if updater == nil {
		updater = &optimizer.SGD{Schedule: cfg.Schedule, Radius: cfg.Radius}
	}
	sens := cfg.Model.GradientSensitivity()

	var (
		queue        eventQueue
		seq          int
		serverIter   int
		stalenessSum int
		droppedStale int
		curve        = metrics.Series{Name: "crowd-ml"}
	)
	push := func(e *event) {
		e.seq = seq
		seq++
		heap.Push(&queue, e)
	}

	process := func(e *event) {
		switch e.kind {
		case evCheckout:
			// Server hands out current w; the device computes and
			// sanitizes the gradient, then the checkin travels back.
			g := optimizer.AverageGradient(cfg.Model, w, e.batch, cfg.Lambda)
			if cfg.GaussianBudget.Enabled() {
				privacy.PerturbGradientGaussian(g, len(e.batch), sens,
					cfg.GaussianBudget.Eps, cfg.GaussianBudget.Delta,
					devs[e.device].noise)
			} else {
				privacy.PerturbGradient(g, len(e.batch), sens,
					cfg.Budget.Gradient, devs[e.device].noise)
			}
			push(&event{
				at:     e.at + delay.Draw(delayRNG), // check-in leg
				kind:   evApply,
				device: e.device,
				grad:   g,
				coIter: serverIter,
			})
		case evApply:
			if cfg.StaleDropThreshold > 0 && serverIter-e.coIter > cfg.StaleDropThreshold {
				droppedStale++
				return
			}
			serverIter++
			stalenessSum += serverIter - 1 - e.coIter
			updater.Update(w, e.grad, serverIter)
		}
	}

	for n := 1; n <= total; n++ {
		now := float64(n)
		// Deliver everything that has arrived by now.
		for len(queue) > 0 && queue[0].at <= now {
			process(heap.Pop(&queue).(*event))
		}
		// One sample arrives at a random device.
		m := arrivalRNG.Intn(cfg.Devices)
		d := &devs[m]
		shard := shards[m]
		if len(shard) == 0 {
			continue
		}
		d.buffer = append(d.buffer, shard[d.pos%len(shard)])
		d.pos++
		if len(d.buffer) >= cfg.Minibatch {
			batch := make([]model.Sample, len(d.buffer))
			copy(batch, d.buffer)
			d.buffer = d.buffer[:0]
			// Request + checkout legs delay when the server reads w.
			push(&event{
				at:     now + delay.Draw(delayRNG) + delay.Draw(delayRNG),
				kind:   evCheckout,
				device: m,
				batch:  batch,
			})
		}
		if n%cfg.EvalEvery == 0 || n == total {
			curve.Append(now, metrics.TestError(cfg.Model, w, evalSet))
		}
	}
	// Drain in-flight events so short runs still apply their updates.
	for len(queue) > 0 {
		process(heap.Pop(&queue).(*event))
	}

	res := &Result{Curve: curve, FinalParams: w, Checkins: serverIter, DroppedStale: droppedStale}
	if serverIter > 0 {
		res.MeanStaleness = float64(stalenessSum) / float64(serverIter)
	}
	return res, nil
}

// RunCrowdTrials runs n independent trials (seeds Seed, Seed+1, …) and
// returns the pointwise-averaged curve — the "averaged test errors from 10
// trials" protocol of Section V-C.
func RunCrowdTrials(cfg CrowdConfig, n int) (metrics.Series, error) {
	if n < 1 {
		return metrics.Series{}, fmt.Errorf("sim: need at least one trial")
	}
	trials := make([]metrics.Series, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*1_000_003
		res, err := RunCrowd(c)
		if err != nil {
			return metrics.Series{}, err
		}
		trials[i] = res.Curve
	}
	return metrics.AverageSeries(trials)
}
