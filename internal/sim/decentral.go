package sim

import (
	"fmt"

	"github.com/crowdml/crowdml/internal/dataset"
	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/metrics"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/rng"
)

// DecentralConfig configures the decentralized baseline of Section IV:
// every device learns purely locally (SoundSense-style), never sharing
// anything. Privacy is maximal but each device sees only ~1/M of the data,
// which is what drives the high error floor of Figs. 4/7.
type DecentralConfig struct {
	// Model is the per-device classifier; required.
	Model model.Model
	// Train and Test are the sample sets.
	Train, Test []model.Sample
	// Devices is M. Must be ≥ 1.
	Devices int
	// Lambda is the regularization weight.
	Lambda float64
	// Schedule is η(t) for each device's local SGD; required.
	Schedule optimizer.Schedule
	// Radius is the projection radius (non-positive disables).
	Radius float64
	// Passes over the training data. Defaults to 1.
	Passes int
	// EvalEvery measures error every this many global samples
	// (default total/50).
	EvalEvery int
	// EvalDevices caps how many devices' models are averaged per
	// evaluation (0 = all; sub-sampling keeps M=1000 sweeps fast).
	EvalDevices int
	// EvalSubset caps test samples per evaluation (0 = all).
	EvalSubset int
	// Seed drives all randomness.
	Seed uint64
}

// RunDecentral simulates decentralized per-device learning and returns the
// device-averaged test-error curve vs global samples used.
func RunDecentral(cfg DecentralConfig) (metrics.Series, error) {
	if cfg.Model == nil || cfg.Schedule == nil {
		return metrics.Series{}, fmt.Errorf("sim: Model and Schedule are required")
	}
	if cfg.Devices < 1 {
		return metrics.Series{}, fmt.Errorf("sim: Devices must be ≥ 1")
	}
	if len(cfg.Train) == 0 {
		return metrics.Series{}, fmt.Errorf("sim: empty training set")
	}
	if cfg.Passes < 1 {
		cfg.Passes = 1
	}
	total := cfg.Passes * len(cfg.Train)
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = total / 50
		if cfg.EvalEvery == 0 {
			cfg.EvalEvery = 1
		}
	}
	// Split streams per consumer, same discipline as RunCrowd: eval
	// sub-sampling knobs must not perturb the arrival schedule.
	root := rng.New(cfg.Seed)
	assignRNG := root.Split()
	evalRNG := root.Split()
	arrivalRNG := root.Split()

	shards := dataset.Assign(cfg.Train, cfg.Devices, assignRNG)
	evalSet := cfg.Test
	if cfg.EvalSubset > 0 && cfg.EvalSubset < len(evalSet) {
		evalSet = dataset.Shuffled(evalSet, evalRNG)[:cfg.EvalSubset]
	}
	evalDevs := cfg.Devices
	if cfg.EvalDevices > 0 && cfg.EvalDevices < evalDevs {
		evalDevs = cfg.EvalDevices
	}
	evalIdx := evalRNG.Perm(cfg.Devices)[:evalDevs]

	type deviceState struct {
		w   *linalg.Matrix
		pos int
		t   int
	}
	devs := make([]deviceState, cfg.Devices)
	for i := range devs {
		devs[i].w = model.NewParams(cfg.Model)
	}
	updater := &optimizer.SGD{Schedule: cfg.Schedule, Radius: cfg.Radius}

	curve := metrics.Series{Name: "decentralized"}
	for n := 1; n <= total; n++ {
		m := arrivalRNG.Intn(cfg.Devices)
		d := &devs[m]
		shard := shards[m]
		if len(shard) == 0 {
			continue
		}
		s := shard[d.pos%len(shard)]
		d.pos++
		d.t++
		g := optimizer.AverageGradient(cfg.Model, d.w, []model.Sample{s}, cfg.Lambda)
		updater.Update(d.w, g, d.t)
		if n%cfg.EvalEvery == 0 || n == total {
			var sum float64
			for _, di := range evalIdx {
				sum += metrics.TestError(cfg.Model, devs[di].w, evalSet)
			}
			curve.Append(float64(n), sum/float64(len(evalIdx)))
		}
	}
	return curve, nil
}
