package sim

import (
	"testing"

	"github.com/crowdml/crowdml/internal/dataset"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/privacy"
	"github.com/crowdml/crowdml/internal/simnet"
)

// smallTask returns a quick MNIST-like task for simulation tests.
func smallTask(t *testing.T) (*dataset.Dataset, model.Model) {
	t.Helper()
	ds, err := dataset.MNISTLike(3000, 800, 11)
	if err != nil {
		t.Fatal(err)
	}
	return ds, model.NewLogisticRegression(ds.Classes, ds.Dim)
}

func baseCfg(ds *dataset.Dataset, m model.Model) CrowdConfig {
	return CrowdConfig{
		Model: m, Train: ds.Train, Test: ds.Test,
		Devices: 50, Minibatch: 1,
		Schedule: optimizer.InvSqrt{C: 50},
		Passes:   2, EvalSubset: 400, Seed: 3,
	}
}

func TestRunCrowdValidation(t *testing.T) {
	ds, m := smallTask(t)
	tests := []struct {
		name   string
		mutate func(*CrowdConfig)
	}{
		{name: "no model", mutate: func(c *CrowdConfig) { c.Model = nil }},
		{name: "no schedule", mutate: func(c *CrowdConfig) { c.Schedule = nil }},
		{name: "no devices", mutate: func(c *CrowdConfig) { c.Devices = 0 }},
		{name: "no data", mutate: func(c *CrowdConfig) { c.Train = nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseCfg(ds, m)
			tt.mutate(&cfg)
			if _, err := RunCrowd(cfg); err == nil {
				t.Error("expected config error")
			}
		})
	}
}

func TestRunCrowdConverges(t *testing.T) {
	ds, m := smallTask(t)
	res, err := RunCrowd(baseCfg(ds, m))
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve.Len() == 0 {
		t.Fatal("empty curve")
	}
	if final := res.Curve.Final(); final > 0.2 {
		t.Errorf("final error %v, want < 0.2 (near central batch ~0.1)", final)
	}
	first := res.Curve.Y[0]
	if first <= res.Curve.Final() {
		t.Errorf("error did not decrease: first %v, final %v", first, res.Curve.Final())
	}
	// Every sample becomes exactly one update at b=1 (after drain).
	if res.Checkins != len(ds.Train)*2 {
		t.Errorf("checkins = %d, want %d", res.Checkins, len(ds.Train)*2)
	}
}

func TestRunCrowdDeterministicPerSeed(t *testing.T) {
	ds, m := smallTask(t)
	cfg := baseCfg(ds, m)
	a, err := RunCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Curve.Y {
		if a.Curve.Y[i] != b.Curve.Y[i] {
			t.Fatal("same seed produced different curves")
		}
	}
	cfg.Seed++
	c, err := RunCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Curve.Y {
		if a.Curve.Y[i] != c.Curve.Y[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical curves")
	}
}

func TestRunCrowdMinibatchReducesCheckins(t *testing.T) {
	ds, m := smallTask(t)
	cfg := baseCfg(ds, m)
	cfg.Minibatch = 20
	res, err := RunCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Communication reduction by ~b (Section IV-B2); buffers may retain a
	// partial batch, so allow slack.
	maxCheckins := len(ds.Train) * 2 / 20
	if res.Checkins > maxCheckins || res.Checkins < maxCheckins/2 {
		t.Errorf("checkins = %d, want ~%d", res.Checkins, maxCheckins)
	}
}

// Privacy ordering (Fig. 5): with ε=10, larger minibatches must give lower
// error, and every private run is worse than the non-private one.
func TestRunCrowdPrivacyOrdering(t *testing.T) {
	ds, m := smallTask(t)
	run := func(b int, eps privacy.Eps) float64 {
		cfg := baseCfg(ds, m)
		cfg.Minibatch = b
		cfg.Budget = privacy.Budget{Gradient: eps}
		cfg.Passes = 3
		res, err := RunCrowd(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Curve.Final()
	}
	eps := privacy.FromInv(0.1)
	clean := run(1, 0)
	b1 := run(1, eps)
	b20 := run(20, eps)
	if b1 <= clean {
		t.Errorf("privacy should cost accuracy: clean %v, b=1 private %v", clean, b1)
	}
	if b20 >= b1 {
		t.Errorf("larger minibatch should mitigate noise: b=20 %v, b=1 %v", b20, b1)
	}
}

// Delay tolerance (Fig. 6): with b=20 the delayed run must stay close to
// the undelayed one.
func TestRunCrowdDelayToleranceAtLargeB(t *testing.T) {
	ds, m := smallTask(t)
	run := func(tau float64) float64 {
		cfg := baseCfg(ds, m)
		cfg.Minibatch = 20
		cfg.Budget = privacy.Budget{Gradient: privacy.FromInv(0.1)}
		cfg.Delay = simnet.Uniform{Max: tau}
		cfg.Passes = 3
		res, err := RunCrowd(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Curve.Final()
	}
	undelayed := run(0)
	delayed := run(200)
	if delayed > undelayed+0.1 {
		t.Errorf("b=20 should tolerate delay: undelayed %v, delayed %v", undelayed, delayed)
	}
}

func TestRunCrowdStalenessGrowsWithDelay(t *testing.T) {
	ds, m := smallTask(t)
	cfg := baseCfg(ds, m)
	cfg.Delay = simnet.Uniform{Max: 100}
	res, err := RunCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanStaleness <= 0 {
		t.Errorf("mean staleness = %v, want > 0 under delay", res.MeanStaleness)
	}
	cfg.Delay = nil
	res0, err := RunCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res0.MeanStaleness != 0 {
		t.Errorf("mean staleness = %v without delay, want 0", res0.MeanStaleness)
	}
}

func TestRunCrowdDrainsInFlight(t *testing.T) {
	// Huge delays relative to the run length: updates must still all be
	// applied by the final drain.
	ds, m := smallTask(t)
	cfg := baseCfg(ds, m)
	cfg.Passes = 1
	cfg.Delay = simnet.Fixed{Value: 1e9}
	res, err := RunCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkins != len(ds.Train) {
		t.Errorf("checkins = %d, want %d after drain", res.Checkins, len(ds.Train))
	}
}

func TestRunCrowdTrials(t *testing.T) {
	ds, m := smallTask(t)
	cfg := baseCfg(ds, m)
	cfg.Passes = 1
	avg, err := RunCrowdTrials(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Len() == 0 {
		t.Fatal("empty averaged curve")
	}
	if _, err := RunCrowdTrials(cfg, 0); err == nil {
		t.Error("expected error for zero trials")
	}
}

func TestRunDecentralWorseThanCrowd(t *testing.T) {
	ds, m := smallTask(t)
	crowd, err := RunCrowd(baseCfg(ds, m))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := RunDecentral(DecentralConfig{
		Model: m, Train: ds.Train, Test: ds.Test,
		Devices: 50, Schedule: optimizer.InvSqrt{C: 50},
		Passes: 2, EvalDevices: 10, EvalSubset: 300, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The data-sharing gap of Figs. 4/7: decentralized must be clearly
	// worse (paper: ~0.5 vs ~0.1).
	if dec.Final() < crowd.Curve.Final()+0.1 {
		t.Errorf("decentralized %v should be well above crowd %v",
			dec.Final(), crowd.Curve.Final())
	}
}

func TestRunDecentralValidation(t *testing.T) {
	ds, m := smallTask(t)
	if _, err := RunDecentral(DecentralConfig{Train: ds.Train}); err == nil {
		t.Error("expected error for missing model/schedule")
	}
	if _, err := RunDecentral(DecentralConfig{
		Model: m, Schedule: optimizer.InvSqrt{C: 1}, Devices: 0, Train: ds.Train,
	}); err == nil {
		t.Error("expected error for zero devices")
	}
	if _, err := RunDecentral(DecentralConfig{
		Model: m, Schedule: optimizer.InvSqrt{C: 1}, Devices: 5,
	}); err == nil {
		t.Error("expected error for empty training set")
	}
}

func TestRunCrowdStaleDropThreshold(t *testing.T) {
	ds, m := smallTask(t)
	cfg := baseCfg(ds, m)
	cfg.Passes = 1
	cfg.Delay = simnet.Fixed{Value: 500}
	cfg.StaleDropThreshold = 1
	res, err := RunCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedStale == 0 {
		t.Error("long fixed delays with threshold 1 should drop gradients")
	}
	if res.Checkins+res.DroppedStale != len(ds.Train) {
		t.Errorf("checkins %d + dropped %d != total %d",
			res.Checkins, res.DroppedStale, len(ds.Train))
	}
}

func TestRunCrowdCustomUpdater(t *testing.T) {
	ds, m := smallTask(t)
	cfg := baseCfg(ds, m)
	cfg.Passes = 1
	cfg.Updater = &optimizer.AdaGrad{Eta: 0.3}
	res, err := RunCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve.Final() > 0.4 {
		t.Errorf("AdaGrad crowd run final error %v, want < 0.4", res.Curve.Final())
	}
}
