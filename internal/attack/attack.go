// Package attack implements the adversary models of the paper's
// Section III-C and empirical evaluations of the defenses:
//
//   - Eavesdropper: observes everything a device transmits (which, per the
//     paper, subsumes malignant-device, server-compromise and publication
//     attacks, since all of those observe derived data). The package
//     measures how well such an adversary can distinguish two neighboring
//     minibatches from the sanitized gradients — an empirical lower-bound
//     check against the ε guarantee of Theorem 1.
//
//   - Malignant device: a registered participant that checks in adversarial
//     gradients to poison the shared model. Remark 3 argues adaptive
//     learning rates "provide a robustness to large gradients from outlying
//     or malignant devices"; RunPoisoning quantifies that claim by pitting
//     plain SGD against AdaGrad under a configurable fraction of attackers.
package attack

import (
	"fmt"
	"math"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/metrics"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/privacy"
	"github.com/crowdml/crowdml/internal/rng"
)

// DistinguishConfig sets up the eavesdropper experiment: the adversary
// knows two candidate minibatches D and D' differing in one sample, knows
// w, observes one sanitized gradient per round, and guesses which
// minibatch produced it via the exact likelihood ratio of the Laplace
// mechanism. The DP guarantee bounds the advantage of ANY such test:
// accuracy ≤ e^ε/(1+e^ε).
type DistinguishConfig struct {
	// Model computes the gradients; required.
	Model model.Model
	// Eps is the gradient mechanism's privacy level; required (enabled).
	Eps privacy.Eps
	// Batch is the minibatch size b.
	Batch int
	// Rounds is the number of observation rounds.
	Rounds int
	// Seed drives data generation, noise and the adversary's coin flips.
	Seed uint64
}

// DistinguishResult reports the adversary's measured performance.
type DistinguishResult struct {
	// Accuracy is the fraction of rounds the adversary guessed correctly.
	Accuracy float64
	// Bound is the DP upper bound e^ε/(1+e^ε) on any adversary's accuracy.
	Bound float64
}

// RunDistinguish measures the best-possible eavesdropper's accuracy at
// telling two neighboring minibatches apart from sanitized gradients.
func RunDistinguish(cfg DistinguishConfig) (*DistinguishResult, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("attack: Model is required")
	}
	if !cfg.Eps.Enabled() {
		return nil, fmt.Errorf("attack: distinguishing test needs an enabled Eps")
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	if cfg.Rounds < 1 {
		cfg.Rounds = 1000
	}
	r := rng.New(cfg.Seed)
	classes, dim := cfg.Model.Shape()

	sample := func() model.Sample {
		x := make([]float64, dim)
		for i := range x {
			x[i] = r.Uniform(-1, 1)
		}
		linalg.NormalizeL1(x)
		return model.Sample{X: x, Y: r.Intn(classes)}
	}
	w := model.NewParams(cfg.Model)
	for i := range w.Data() {
		w.Data()[i] = r.Uniform(-1, 1)
	}

	// Two fixed neighboring minibatches.
	batchA := make([]model.Sample, cfg.Batch)
	for i := range batchA {
		batchA[i] = sample()
	}
	batchB := append([]model.Sample(nil), batchA...)
	batchB[0] = sample()

	gradA := optimizer.AverageGradient(cfg.Model, w, batchA, 0)
	gradB := optimizer.AverageGradient(cfg.Model, w, batchB, 0)
	scale := cfg.Model.GradientSensitivity() / (float64(cfg.Batch) * float64(cfg.Eps))

	correct := 0
	noisy := model.NewParams(cfg.Model)
	for round := 0; round < cfg.Rounds; round++ {
		truthIsA := r.Float64() < 0.5
		src := gradB
		if truthIsA {
			src = gradA
		}
		copy(noisy.Data(), src.Data())
		privacy.PerturbGradient(noisy, cfg.Batch, cfg.Model.GradientSensitivity(), cfg.Eps, r)

		// Exact log-likelihood ratio under the Laplace mechanism:
		// log P(obs|A) − log P(obs|B) = Σ (|obs−gB| − |obs−gA|)/scale.
		var llr float64
		obs := noisy.Data()
		ga, gb := gradA.Data(), gradB.Data()
		for i := range obs {
			llr += (math.Abs(obs[i]-gb[i]) - math.Abs(obs[i]-ga[i])) / scale
		}
		guessA := llr > 0
		if llr == 0 {
			guessA = r.Float64() < 0.5
		}
		if guessA == truthIsA {
			correct++
		}
	}
	eps := float64(cfg.Eps)
	return &DistinguishResult{
		Accuracy: float64(correct) / float64(cfg.Rounds),
		Bound:    math.Exp(eps) / (1 + math.Exp(eps)),
	}, nil
}

// PoisonStrategy selects how a malignant device constructs its checkins.
type PoisonStrategy int

const (
	// PoisonLargeGradient sends a huge constant gradient — the "large
	// gradients from outlying or malignant devices" of Remark 3.
	PoisonLargeGradient PoisonStrategy = iota + 1
	// PoisonSignFlip sends the negated honest gradient scaled up,
	// actively pushing the model away from the optimum.
	PoisonSignFlip
)

// ParseStrategy maps a strategy's wire name ("large-gradient",
// "sign-flip") to its PoisonStrategy — the inverse of String, for
// scenario files and CLI flags.
func ParseStrategy(name string) (PoisonStrategy, error) {
	switch name {
	case "large-gradient":
		return PoisonLargeGradient, nil
	case "sign-flip":
		return PoisonSignFlip, nil
	}
	return 0, fmt.Errorf("attack: unknown strategy %q", name)
}

// String returns the strategy's wire name.
func (s PoisonStrategy) String() string {
	switch s {
	case PoisonLargeGradient:
		return "large-gradient"
	case PoisonSignFlip:
		return "sign-flip"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Corrupt replaces the honest gradient g in place with the strategy's
// adversarial version — the single poisoning implementation shared by
// RunPoisoning and the scenario harness's byzantine cohorts, so the two
// can never drift. r drives PoisonLargeGradient's random coordinates;
// unknown strategies leave g untouched.
func Corrupt(g *linalg.Matrix, strategy PoisonStrategy, magnitude float64, r *rng.RNG) {
	switch strategy {
	case PoisonLargeGradient:
		data := g.Data()
		for i := range data {
			data[i] = magnitude * (r.Float64() - 0.5)
		}
	case PoisonSignFlip:
		g.Scale(-magnitude)
	}
}

// PoisonConfig sets up the model-poisoning experiment.
type PoisonConfig struct {
	// Model is the shared classifier; required.
	Model model.Model
	// Train and Test are the sample sets.
	Train, Test []model.Sample
	// Devices is the crowd size; MaliciousFrac of them are attackers.
	Devices int
	// MaliciousFrac is the fraction of malignant devices in [0, 1).
	MaliciousFrac float64
	// Strategy selects the attack.
	Strategy PoisonStrategy
	// Magnitude scales the adversarial gradients.
	Magnitude float64
	// Updater is the server's update rule under test (SGD vs AdaGrad).
	Updater optimizer.Updater
	// Rounds is the number of checkins processed.
	Rounds int
	// Seed drives everything.
	Seed uint64
}

// PoisonResult reports the outcome of a poisoning run.
type PoisonResult struct {
	// TestError is the final shared-model error.
	TestError float64
	// MaliciousCheckins counts adversarial updates applied.
	MaliciousCheckins int
}

// RunPoisoning trains the shared model with a mixed honest/malignant crowd
// and reports the damage. Comparing Updater = SGD against AdaGrad
// quantifies Remark 3's robustness claim.
func RunPoisoning(cfg PoisonConfig) (*PoisonResult, error) {
	if cfg.Model == nil || cfg.Updater == nil {
		return nil, fmt.Errorf("attack: Model and Updater are required")
	}
	if len(cfg.Train) == 0 {
		return nil, fmt.Errorf("attack: empty training set")
	}
	if cfg.Devices < 1 {
		cfg.Devices = 100
	}
	if cfg.MaliciousFrac < 0 || cfg.MaliciousFrac >= 1 {
		return nil, fmt.Errorf("attack: MaliciousFrac %v outside [0, 1)", cfg.MaliciousFrac)
	}
	if cfg.Rounds < 1 {
		cfg.Rounds = len(cfg.Train)
	}
	if cfg.Magnitude <= 0 {
		cfg.Magnitude = 100
	}
	switch cfg.Strategy {
	case PoisonLargeGradient, PoisonSignFlip:
	default:
		return nil, fmt.Errorf("attack: unknown strategy %d", cfg.Strategy)
	}

	r := rng.New(cfg.Seed)
	malicious := make([]bool, cfg.Devices)
	wantBad := int(cfg.MaliciousFrac * float64(cfg.Devices))
	for _, idx := range r.Perm(cfg.Devices)[:wantBad] {
		malicious[idx] = true
	}

	w := model.NewParams(cfg.Model)
	badCheckins := 0
	for t := 1; t <= cfg.Rounds; t++ {
		dev := r.Intn(cfg.Devices)
		s := cfg.Train[r.Intn(len(cfg.Train))]
		g := optimizer.AverageGradient(cfg.Model, w, []model.Sample{s}, 0)
		if malicious[dev] {
			badCheckins++
			Corrupt(g, cfg.Strategy, cfg.Magnitude, r)
		}
		cfg.Updater.Update(w, g, t)
	}
	return &PoisonResult{
		TestError:         metrics.TestError(cfg.Model, w, cfg.Test),
		MaliciousCheckins: badCheckins,
	}, nil
}
