package attack

import (
	"math"
	"testing"

	"github.com/crowdml/crowdml/internal/dataset"
	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/privacy"
	"github.com/crowdml/crowdml/internal/rng"
)

func TestDistinguishRespectsDPBound(t *testing.T) {
	// The optimal likelihood-ratio adversary must not beat the DP bound
	// e^ε/(1+e^ε). This is the empirical verification of Theorem 1.
	tests := []struct {
		name string
		eps  privacy.Eps
		b    int
	}{
		{name: "eps 0.5 b=1", eps: 0.5, b: 1},
		{name: "eps 1 b=1", eps: 1, b: 1},
		{name: "eps 1 b=20", eps: 1, b: 20},
		{name: "eps 2 b=1", eps: 2, b: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := RunDistinguish(DistinguishConfig{
				Model:  model.NewLogisticRegression(4, 10),
				Eps:    tt.eps,
				Batch:  tt.b,
				Rounds: 4000,
				Seed:   7,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Allow 3σ sampling slack above the bound.
			slack := 3 * math.Sqrt(0.25/4000)
			if res.Accuracy > res.Bound+slack {
				t.Errorf("adversary accuracy %v exceeds DP bound %v",
					res.Accuracy, res.Bound)
			}
			// The adversary should also be meaningfully better than a coin
			// at high ε with b=1 (otherwise the test tests nothing).
			if tt.eps == 2 && tt.b == 1 && res.Accuracy < 0.55 {
				t.Errorf("optimal adversary suspiciously weak: %v", res.Accuracy)
			}
		})
	}
}

func TestDistinguishHardensWithMoreAveraging(t *testing.T) {
	run := func(b int) float64 {
		res, err := RunDistinguish(DistinguishConfig{
			Model:  model.NewLogisticRegression(4, 10),
			Eps:    4,
			Batch:  b,
			Rounds: 4000,
			Seed:   11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Accuracy
	}
	// Same ε: the guarantee is identical, but larger b shrinks the gap
	// between neighboring gradients faster than the noise, so the
	// practical advantage drops.
	small := run(1)
	large := run(50)
	if large > small {
		t.Errorf("adversary should weaken with b: b=1 %v, b=50 %v", small, large)
	}
}

func TestDistinguishValidation(t *testing.T) {
	if _, err := RunDistinguish(DistinguishConfig{Eps: 1}); err == nil {
		t.Error("missing model should error")
	}
	if _, err := RunDistinguish(DistinguishConfig{
		Model: model.NewLogisticRegression(2, 2),
	}); err == nil {
		t.Error("disabled eps should error")
	}
}

func poisonTask(t *testing.T) (*dataset.Dataset, model.Model) {
	t.Helper()
	ds, err := dataset.MNISTLike(3000, 600, 31)
	if err != nil {
		t.Fatal(err)
	}
	return ds, model.NewLogisticRegression(ds.Classes, ds.Dim)
}

func TestPoisoningDegradesPlainSGD(t *testing.T) {
	ds, m := poisonTask(t)
	clean, err := RunPoisoning(PoisonConfig{
		Model: m, Train: ds.Train, Test: ds.Test,
		Devices: 100, MaliciousFrac: 0, Strategy: PoisonLargeGradient,
		Updater: &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 50}},
		Rounds:  6000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	poisoned, err := RunPoisoning(PoisonConfig{
		Model: m, Train: ds.Train, Test: ds.Test,
		Devices: 100, MaliciousFrac: 0.1, Strategy: PoisonLargeGradient,
		Magnitude: 100,
		Updater:   &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 50}},
		Rounds:    6000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if poisoned.MaliciousCheckins == 0 {
		t.Fatal("no malicious checkins happened")
	}
	if poisoned.TestError < clean.TestError+0.1 {
		t.Errorf("poisoning should hurt plain SGD: clean %v, poisoned %v",
			clean.TestError, poisoned.TestError)
	}
}

// Remark 3's claim: adaptive learning rates provide robustness to large
// gradients from malignant devices. AdaGrad's per-coordinate normalization
// caps the damage a huge gradient can do.
func TestAdaGradMoreRobustThanSGDUnderPoisoning(t *testing.T) {
	ds, m := poisonTask(t)
	run := func(u optimizer.Updater) float64 {
		res, err := RunPoisoning(PoisonConfig{
			Model: m, Train: ds.Train, Test: ds.Test,
			Devices: 100, MaliciousFrac: 0.1, Strategy: PoisonLargeGradient,
			Magnitude: 100,
			Updater:   u,
			Rounds:    6000, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TestError
	}
	sgd := run(&optimizer.SGD{Schedule: optimizer.InvSqrt{C: 50}})
	ada := run(&optimizer.AdaGrad{Eta: 0.5})
	if ada >= sgd {
		t.Errorf("AdaGrad (%v) should beat SGD (%v) under poisoning", ada, sgd)
	}
}

func TestPoisonSignFlipStrategy(t *testing.T) {
	ds, m := poisonTask(t)
	res, err := RunPoisoning(PoisonConfig{
		Model: m, Train: ds.Train, Test: ds.Test,
		Devices: 50, MaliciousFrac: 0.2, Strategy: PoisonSignFlip,
		Magnitude: 10,
		Updater:   &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 50}},
		Rounds:    3000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaliciousCheckins < 400 {
		t.Errorf("expected ~600 malicious checkins, got %d", res.MaliciousCheckins)
	}
}

func TestPoisoningValidation(t *testing.T) {
	ds, m := poisonTask(t)
	u := &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 1}}
	if _, err := RunPoisoning(PoisonConfig{Train: ds.Train, Updater: u}); err == nil {
		t.Error("missing model should error")
	}
	if _, err := RunPoisoning(PoisonConfig{Model: m, Updater: u}); err == nil {
		t.Error("empty training set should error")
	}
	if _, err := RunPoisoning(PoisonConfig{
		Model: m, Train: ds.Train, Updater: u, MaliciousFrac: 1.5,
		Strategy: PoisonSignFlip,
	}); err == nil {
		t.Error("bad fraction should error")
	}
	if _, err := RunPoisoning(PoisonConfig{
		Model: m, Train: ds.Train, Updater: u, Strategy: 0,
	}); err == nil {
		t.Error("unknown strategy should error")
	}
}

// The sensitivity-aware server-side clip (optimizer.Clip) must neutralize
// the large-gradient attack almost completely: honest averaged gradients
// have L1 norm at most 2, so a clip at 4 never touches them.
func TestClipNeutralizesPoisoning(t *testing.T) {
	ds, m := poisonTask(t)
	res, err := RunPoisoning(PoisonConfig{
		Model: m, Train: ds.Train, Test: ds.Test,
		Devices: 100, MaliciousFrac: 0.1, Strategy: PoisonLargeGradient,
		Magnitude: 100,
		Updater: &optimizer.Clip{
			Inner:    &optimizer.SGD{Schedule: optimizer.InvSqrt{C: 50}},
			MaxNorm1: 4,
		},
		Rounds: 6000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TestError > 0.2 {
		t.Errorf("clipped server still poisoned: test error %v", res.TestError)
	}
}

// TestParseStrategyRoundTrip pins the wire names used by scenario files
// and CLI flags to their strategies, both directions.
func TestParseStrategyRoundTrip(t *testing.T) {
	for _, s := range []PoisonStrategy{PoisonLargeGradient, PoisonSignFlip} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v, want %v", s.String(), got, err, s)
		}
	}
	if _, err := ParseStrategy("gradient-ascent"); err == nil {
		t.Error("ParseStrategy accepted an unknown name")
	}
}

// TestCorrupt checks the shared poisoning primitive: sign-flip is an
// exact scaled negation, large-gradient replaces every coordinate within
// the magnitude envelope, and an unknown strategy is a no-op.
func TestCorrupt(t *testing.T) {
	mk := func() *linalg.Matrix {
		g, err := linalg.NewMatrixFrom(1, 4, []float64{0.5, -0.25, 1, 0})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	r := rng.New(9)

	g := mk()
	Corrupt(g, PoisonSignFlip, 10, r)
	want := []float64{-5, 2.5, -10, 0}
	for i, v := range g.Data() {
		if v != want[i] {
			t.Fatalf("sign-flip[%d] = %v, want %v", i, v, want[i])
		}
	}

	g = mk()
	Corrupt(g, PoisonLargeGradient, 100, r)
	changed := false
	for i, v := range g.Data() {
		if v != mk().Data()[i] {
			changed = true
		}
		if v < -50 || v > 50 {
			t.Fatalf("large-gradient[%d] = %v outside ±magnitude/2", i, v)
		}
	}
	if !changed {
		t.Error("large-gradient left the gradient untouched")
	}

	g = mk()
	Corrupt(g, PoisonStrategy(99), 10, r)
	for i, v := range g.Data() {
		if v != mk().Data()[i] {
			t.Fatalf("unknown strategy modified the gradient at [%d]", i)
		}
	}
}
