package scenario

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// writeReport drops a run's full JSON into SCENARIO_REPORT_DIR when set,
// so the CI smoke step can upload the reports as an artifact.
func writeReport(t *testing.T, rep *Report, name string) {
	t.Helper()
	dir := os.Getenv("SCENARIO_REPORT_DIR")
	if dir == "" {
		return
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatalf("render report: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".json"), append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write report: %v", err)
	}
}

func mustRun(t *testing.T, spec Spec) *Report {
	t.Helper()
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("scenario %s: %v", spec.Name, err)
	}
	return rep
}

func mustBuiltin(t *testing.T, name string) Spec {
	t.Helper()
	spec, ok := Builtin(name)
	if !ok {
		t.Fatalf("missing builtin %q", name)
	}
	return spec
}

// checkAccounting verifies the sample conservation law: with Minibatch 1
// every global sample either lands as an accepted checkin, is rejected at
// checkout or checkin, or arrives at a departed device.
func checkAccounting(t *testing.T, rep *Report) {
	t.Helper()
	got := rep.Checkins + rep.RejectedAuth + rep.RejectedOther + rep.LostSamples
	if got != rep.GlobalSamples {
		t.Errorf("sample accounting: checkins %d + rejectedAuth %d + rejectedOther %d + lost %d = %d, want %d",
			rep.Checkins, rep.RejectedAuth, rep.RejectedOther, rep.LostSamples, got, rep.GlobalSamples)
	}
}

// TestScenarioSameSeedReportsIdentical is the determinism acceptance
// gate: two Workers=1 runs of the same spec must agree on every report
// byte outside the wall-clock section — schedule, convergence curve,
// churn effects, rejects AND the scraped server-side metric deltas.
func TestScenarioSameSeedReportsIdentical(t *testing.T) {
	spec := mustBuiltin(t, "churn-straggler-2k")
	rep1 := mustRun(t, spec)
	rep2 := mustRun(t, spec)
	writeReport(t, rep1, spec.Name)

	j1, err := rep1.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := rep2.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("same-seed reports differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", j1, j2)
	}

	// The stressors must actually have fired, or determinism is vacuous.
	checkAccounting(t, rep1)
	if want := spec.Samples / spec.Churn.Every; rep1.Churn.Leaves != want {
		t.Errorf("Leaves = %d, want %d", rep1.Churn.Leaves, want)
	}
	if rep1.Churn.Rejoins != rep1.Churn.Leaves {
		t.Errorf("Rejoins = %d, want %d (every departure rejoins)", rep1.Churn.Rejoins, rep1.Churn.Leaves)
	}
	// Joins = initial crowd + probe + every rejoin.
	if want := spec.Devices + 1 + rep1.Churn.Rejoins; rep1.Churn.Joins != want {
		t.Errorf("Joins = %d, want %d", rep1.Churn.Joins, want)
	}
	if rep1.StragglerDevices == 0 || rep1.Checkins == 0 || len(rep1.Curve) == 0 {
		t.Errorf("degenerate report: stragglers %d, checkins %d, curve %d points",
			rep1.StragglerDevices, rep1.Checkins, len(rep1.Curve))
	}
	if len(rep1.MetricsDeltas) == 0 {
		t.Error("no metrics deltas scraped")
	}
	// A seed change must produce a different schedule.
	spec.Seed++
	rep3 := mustRun(t, spec)
	j3, err := rep3.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(j1, j3) {
		t.Error("different seeds produced identical reports")
	}
}

// TestScenarioShardedChurnWithinControlEnvelope pins the 4-shard
// churn+straggler scenario's final test error to the single-leader
// control's: sharding the write path must not change what the crowd
// learns beyond a small envelope.
func TestScenarioShardedChurnWithinControlEnvelope(t *testing.T) {
	control := mustRun(t, mustBuiltin(t, "churn-straggler-2k"))
	sharded := mustRun(t, mustBuiltin(t, "churn-straggler-2k-4shard"))
	writeReport(t, sharded, "churn-straggler-2k-4shard")
	checkAccounting(t, sharded)

	const envelope = 0.10
	if d := math.Abs(sharded.FinalTestError - control.FinalTestError); d > envelope {
		t.Errorf("4-shard final error %v vs control %v: |Δ| = %v exceeds envelope %v",
			sharded.FinalTestError, control.FinalTestError, d, envelope)
	}
	if control.FinalTestError > 0.10 {
		t.Errorf("control failed to converge: final error %v", control.FinalTestError)
	}
	if sharded.Shards != 4 {
		t.Errorf("Shards = %d, want 4", sharded.Shards)
	}
	// The router must actually have split the crowd across members.
	shardsSeen := 0
	for _, series := range []string{"0", "1", "2", "3"} {
		key := `crowdml_shard_routed_requests_total{task="scenario",shard="` + series + `",op="checkin"}`
		if sharded.MetricsDeltas[key] > 0 {
			shardsSeen++
		}
	}
	if shardsSeen != 4 {
		t.Errorf("checkins routed to %d shards, want 4 (deltas: %v)", shardsSeen, sharded.MetricsDeltas)
	}
}

// TestScenarioByzantineDegradesConvergence runs the byzantine builtin
// against its attack-free twin: the poisoned crowd's final error must be
// measurably worse, and the damage must be visible in the report.
func TestScenarioByzantineDegradesConvergence(t *testing.T) {
	spec := mustBuiltin(t, "byzantine-2k")
	poisoned := mustRun(t, spec)
	writeReport(t, poisoned, spec.Name)
	checkAccounting(t, poisoned)

	clean := spec
	clean.Name = "byzantine-2k-control"
	clean.Byzantine = ByzantineSpec{}
	honest := mustRun(t, clean)

	if poisoned.ByzantineDevices == 0 || poisoned.ByzantineCheckins == 0 {
		t.Fatalf("attack never fired: %d byzantine devices, %d poisoned checkins",
			poisoned.ByzantineDevices, poisoned.ByzantineCheckins)
	}
	const margin = 0.10
	if poisoned.FinalTestError < honest.FinalTestError+margin {
		t.Errorf("poisoning not visible: byzantine final error %v vs honest %v (want ≥ %v worse)",
			poisoned.FinalTestError, honest.FinalTestError, margin)
	}
	if honest.FinalTestError > 0.10 {
		t.Errorf("honest control failed to converge: final error %v", honest.FinalTestError)
	}
}

// TestScenarioFollowerHintRedirectAndConsistency drives the crowd at the
// follower: every registration must follow exactly one 409 leader hint,
// and at the end the follower's replicated learning state must match the
// leader's bit for bit.
func TestScenarioFollowerHintRedirectAndConsistency(t *testing.T) {
	spec := mustBuiltin(t, "follower-hint-1k")
	rep := mustRun(t, spec)
	writeReport(t, rep, spec.Name)
	checkAccounting(t, rep)

	// One redirect hop per registration: the crowd plus the eval probe.
	if want := spec.Devices + 1; rep.Retries != want {
		t.Errorf("Retries = %d, want %d (one leader-hint hop per registration)", rep.Retries, want)
	}
	if rep.FollowerConsistent == nil || !*rep.FollowerConsistent {
		t.Errorf("FollowerConsistent = %v, want true", rep.FollowerConsistent)
	}
	if rep.Checkins == 0 || rep.RejectedOther != 0 {
		t.Errorf("checkins %d, rejectedOther %d", rep.Checkins, rep.RejectedOther)
	}
	if rep.FinalTestError > 0.10 {
		t.Errorf("failed to converge through the redirected write path: final error %v", rep.FinalTestError)
	}
}

// TestScenarioParallelWorkers exercises the bounded worker pool
// (Workers > 1 trades bit-reproducibility for throughput; the schedule
// and per-device event order stay fixed). Run under -race this is the
// harness's concurrency gate.
func TestScenarioParallelWorkers(t *testing.T) {
	spec := mustBuiltin(t, "churn-straggler-2k")
	spec.Name = "churn-straggler-2k-workers4"
	spec.Devices = 400
	spec.Samples = 1500
	spec.Workers = 4
	rep := mustRun(t, spec)
	checkAccounting(t, rep)
	if rep.Workers != 4 {
		t.Errorf("Workers = %d, want 4", rep.Workers)
	}
	if rep.Checkins == 0 || len(rep.Curve) == 0 {
		t.Errorf("degenerate parallel run: checkins %d, curve %d", rep.Checkins, len(rep.Curve))
	}
}

// TestScenarioWireEquivalence is the wire-protocol acceptance gate: the
// binary and binary-delta encodings are bit-exact for float64 payloads,
// so a same-seed run must produce a report byte-identical to the JSON
// control — same convergence curve, same schedule, same metric deltas.
// The stressors stay on so deltas are exercised across churn-driven
// re-registrations and straggler-stale checkouts, not just the happy
// path.
func TestScenarioWireEquivalence(t *testing.T) {
	spec := mustBuiltin(t, "churn-straggler-2k")
	spec.Devices = 400
	spec.Samples = 1500
	spec.TrainSize = 1500
	spec.TestSize = 300

	control := mustRun(t, spec)
	cj, err := control.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, control)
	if control.Checkins == 0 || len(control.Curve) == 0 {
		t.Fatalf("degenerate control: checkins %d, curve %d points", control.Checkins, len(control.Curve))
	}
	for _, wire := range []string{"binary", "binary-delta"} {
		run := spec
		run.Wire = wire
		rep := mustRun(t, run)
		j, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cj, j) {
			t.Errorf("wire=%s report diverged from the JSON control:\n--- json ---\n%s\n--- %s ---\n%s",
				wire, cj, wire, j)
		}
	}
}

// TestScenarioValidate covers spec validation and defaulting edges.
func TestScenarioValidate(t *testing.T) {
	base := mustBuiltin(t, "churn-straggler-2k")
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"unknown topology", func(s *Spec) { s.Topology = "ring" }},
		{"no devices", func(s *Spec) { s.Devices = 0 }},
		{"no samples", func(s *Spec) { s.Samples = 0 }},
		{"bad shape", func(s *Spec) { s.Classes = 1 }},
		{"bad updater", func(s *Spec) { s.Updater = "adam" }},
		{"bad straggler fraction", func(s *Spec) { s.Straggler.Fraction = 1.5 }},
		{"bad byzantine fraction", func(s *Spec) { s.Byzantine.Fraction = 1 }},
		{"bad byzantine strategy", func(s *Spec) { s.Byzantine = ByzantineSpec{Fraction: 0.1, Strategy: "nope"} }},
		{"no learning rate", func(s *Spec) { s.LearningRate = 0 }},
		{"bad wire", func(s *Spec) { s.Wire = "protobuf" }},
	}
	for _, tc := range cases {
		spec := base
		tc.mutate(&spec)
		if err := spec.withDefaults().Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid spec", tc.name)
		}
	}
	if err := base.withDefaults().Validate(); err != nil {
		t.Errorf("builtin spec invalid: %v", err)
	}
	for _, name := range BuiltinNames() {
		spec := mustBuiltin(t, name)
		if err := spec.withDefaults().Validate(); err != nil {
			t.Errorf("builtin %s invalid: %v", name, err)
		}
	}
}
