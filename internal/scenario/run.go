package scenario

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/crowdml/crowdml/internal/attack"
	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/dataset"
	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/metrics"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/privacy"
	"github.com/crowdml/crowdml/internal/rng"
	"github.com/crowdml/crowdml/internal/simnet"
	"github.com/crowdml/crowdml/internal/transport"
)

// parseStrategy adapts attack.ParseStrategy for Spec.Validate.
func parseStrategy(name string) (attack.PoisonStrategy, error) {
	return attack.ParseStrategy(name)
}

// vdevice is one multiplexed virtual device: a struct, not a goroutine —
// crowds are bounded by memory, and a bounded worker pool carries the
// HTTP traffic. Fields after the identity block are only touched by the
// event loop or by the single worker executing this device's wave group,
// so per-device state needs no locking.
type vdevice struct {
	id        string
	byzantine bool
	straggler bool

	client *transport.HTTPClient // current write/read target (follows hints)
	token  string
	joined bool
	shard  []model.Sample
	pos    int
	buffer []model.Sample
	noise  *rng.RNG // DP noise + byzantine coordinates; one stream per device
}

type eventKind int

const (
	// evFlush performs the real checkout, computes and sanitizes (or
	// poisons) the minibatch gradient, and schedules its delivery.
	evFlush eventKind = iota + 1
	// evDeliver performs the real checkin with the echoed version.
	evDeliver
	// evRejoin re-registers a departed device (token rotation).
	evRejoin
)

// event is one scheduled action in virtual time. Credentials and the
// client are snapshotted at scheduling: a device that departs and
// rejoins while a checkin is in flight presents its rotated-away token
// and is rejected — exactly the real-world race the churn stressor is
// after.
type event struct {
	at      float64
	seq     int
	kind    eventKind
	dev     int
	batch   []model.Sample
	token   string
	client  *transport.HTTPClient
	ciDelay float64 // pre-drawn checkin leg, carried so workers never touch the delay stream
	req     *core.CheckinRequest
}

// eventQueue is a min-heap on (at, seq) — identical ordering to sim's.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// engine is one run's mutable state.
type engine struct {
	spec    Spec
	model   model.Model
	sens    float64
	budget  privacy.Budget
	strat   attack.PoisonStrategy
	stack   *stack
	devs    []*vdevice
	evalSet []model.Sample
	delay   simnet.DelayModel

	queue eventQueue
	seq   int

	// delayRNG is drawn only at scheduling time, on the event-loop
	// thread; workers receive pre-drawn delays inside events.
	delayRNG *rng.RNG

	mu  sync.Mutex // guards rep counters and httpCalls under Workers > 1
	rep *Report

	httpCalls  int
	probeToken string
}

func (e *engine) push(ev *event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.queue, ev)
}

// Run executes one scenario against a freshly built real-stack topology
// and returns its report.
func Run(ctx context.Context, spec Spec) (*Report, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := model.NewLogisticRegression(spec.Classes, spec.Dim)
	ds, err := dataset.GenerateMixture(dataset.MixtureConfig{
		Name: spec.Name, Classes: spec.Classes, Dim: spec.Dim,
		TrainSize: spec.TrainSize, TestSize: spec.TestSize,
		MeanScale: 1, NoiseScale: 0.35, Seed: spec.Seed,
	})
	if err != nil {
		return nil, err
	}

	st, err := buildStack(ctx, spec, m)
	if err != nil {
		return nil, err
	}
	defer st.close()

	// Stream isolation mirrors internal/sim: every randomness consumer
	// gets its own split so one stressor's draw count can never perturb
	// another's schedule (the same-seed contract).
	root := rng.New(spec.Seed)
	assignRNG := root.Split()
	evalRNG := root.Split()
	cohortRNG := root.Split()
	arrivalRNG := root.Split()
	delayRNG := root.Split()
	churnRNG := root.Split()
	noiseRoot := root.Split()

	shards := dataset.Assign(ds.Train, spec.Devices, assignRNG)
	evalSet := ds.Test
	if spec.EvalSubset > 0 && spec.EvalSubset < len(evalSet) {
		evalSet = dataset.Shuffled(evalSet, evalRNG)[:spec.EvalSubset]
	}

	e := &engine{
		spec:     spec,
		model:    m,
		sens:     m.GradientSensitivity(),
		stack:    st,
		evalSet:  evalSet,
		delay:    simnet.Uniform{Max: spec.Straggler.Tau},
		delayRNG: delayRNG,
		budget: privacy.Budget{
			Gradient:   privacy.FromInv(spec.Privacy.GradientEpsInv),
			ErrCount:   privacy.FromInv(spec.Privacy.CountEpsInv),
			LabelCount: privacy.FromInv(spec.Privacy.CountEpsInv),
		},
		rep: &Report{
			Scenario: spec.Name, Topology: spec.Topology, Seed: spec.Seed,
			Devices: spec.Devices, Workers: spec.Workers,
			GlobalSamples: spec.Samples,
		},
	}
	if spec.Topology == TopologySharded {
		e.rep.Shards = spec.Shards
	}
	if spec.Byzantine.Fraction > 0 {
		e.strat, _ = parseStrategy(spec.Byzantine.Strategy)
	}

	entry := st.clientFor(st.entryURL)
	e.devs = make([]*vdevice, spec.Devices)
	for i := range e.devs {
		e.devs[i] = &vdevice{
			id:     fmt.Sprintf("dev-%05d", i),
			client: entry,
			shard:  shards[i],
			noise:  noiseRoot.Split(),
		}
	}
	byzN := int(spec.Byzantine.Fraction * float64(spec.Devices))
	for _, idx := range cohortRNG.Perm(spec.Devices)[:byzN] {
		e.devs[idx].byzantine = true
	}
	stragN := int(spec.Straggler.Fraction * float64(spec.Devices))
	for _, idx := range cohortRNG.Perm(spec.Devices)[:stragN] {
		e.devs[idx].straggler = true
	}
	e.rep.ByzantineDevices = byzN
	e.rep.StragglerDevices = stragN

	before, err := scrapeMetrics(st.metricsURL)
	if err != nil {
		return nil, err
	}
	start := time.Now()

	// Initial join wave: every device registers through the entry URL,
	// following leader hints (the follower topology's one redirect hop).
	for _, d := range e.devs {
		if err := e.register(ctx, d); err != nil {
			return nil, fmt.Errorf("scenario: register %s: %w", d.id, err)
		}
	}
	// The evaluation probe is an ordinary registered device whose
	// checkouts read the real serving path at each measurement.
	probe := &vdevice{id: "probe", client: entry}
	if err := e.register(ctx, probe); err != nil {
		return nil, fmt.Errorf("scenario: register probe: %w", err)
	}
	e.probeToken = probe.token
	probeClient := probe.client

	// The virtual-time loop: one global sample per tick, exactly sim's
	// clock, but every flush crosses the real HTTP stack.
	for n := 1; n <= spec.Samples; n++ {
		now := float64(n)
		if st.sync != nil {
			st.sync()
		}
		if err := e.drainDue(ctx, now); err != nil {
			return nil, err
		}
		if spec.Churn.Every > 0 && n%spec.Churn.Every == 0 {
			e.departOne(churnRNG, now)
		}
		idx := arrivalRNG.Intn(spec.Devices)
		d := e.devs[idx]
		switch {
		case !d.joined:
			e.rep.LostSamples++
		case len(d.shard) == 0:
			// A crowd larger than the training set leaves some devices
			// with no local data; their samples are never generated.
		default:
			d.buffer = append(d.buffer, d.shard[d.pos%len(d.shard)])
			d.pos++
			if len(d.buffer) >= spec.Minibatch {
				batch := make([]model.Sample, len(d.buffer))
				copy(batch, d.buffer)
				d.buffer = d.buffer[:0]
				var reqD, coD, ciD float64
				if d.straggler {
					reqD = e.delay.Draw(e.delayRNG)
					coD = e.delay.Draw(e.delayRNG)
					ciD = e.delay.Draw(e.delayRNG)
				}
				e.push(&event{
					at: now + reqD + coD, kind: evFlush, dev: idx,
					batch: batch, token: d.token, client: d.client, ciDelay: ciD,
				})
			}
		}
		if n%spec.EvalEvery == 0 && n != spec.Samples {
			if err := e.eval(ctx, probeClient, n); err != nil {
				return nil, err
			}
		}
	}
	// Drain in-flight events so every scheduled checkin lands.
	for len(e.queue) > 0 {
		if st.sync != nil {
			st.sync()
		}
		if err := e.drainDue(ctx, math.Inf(1)); err != nil {
			return nil, err
		}
	}
	if st.sync != nil {
		st.sync()
	}
	if err := e.eval(ctx, probeClient, spec.Samples); err != nil {
		return nil, err
	}
	if len(e.rep.Curve) > 0 {
		e.rep.FinalTestError = e.rep.Curve[len(e.rep.Curve)-1].TestError
	}

	stats, err := probeClient.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("scenario: stats: %w", err)
	}
	e.httpCalls++
	e.rep.ServerIteration = stats.Iteration
	e.rep.ErrorEstimate = stats.ErrorEstimate

	if st.finish != nil {
		if err := st.finish(e.rep); err != nil {
			return nil, err
		}
	}

	after, err := scrapeMetrics(st.metricsURL)
	if err != nil {
		return nil, err
	}
	e.rep.MetricsDeltas = metricsDelta(before, after)

	dur := time.Since(start).Seconds()
	e.rep.WallClock = WallClock{
		DurationSeconds: dur,
		CheckinsPerSec:  float64(e.rep.Checkins) / dur,
		RequestsPerSec:  float64(e.httpCalls) / dur,
	}
	return e.rep, nil
}

// register enrolls a device through its current client, following at
// most two leader hints (one hop is the contract; the second tolerates a
// hint chain during topology bring-up).
func (e *engine) register(ctx context.Context, d *vdevice) error {
	for hop := 0; ; hop++ {
		tok, err := d.client.Register(ctx, d.id, joinKey)
		e.mu.Lock()
		e.httpCalls++
		e.mu.Unlock()
		if err == nil {
			d.token = tok
			d.joined = true
			e.mu.Lock()
			e.rep.Churn.Joins++
			e.mu.Unlock()
			return nil
		}
		hint, ok := transport.LeaderHint(err)
		if !ok || hop >= 2 {
			return err
		}
		d.client = e.stack.clientFor(hint)
		e.mu.Lock()
		e.rep.Retries++
		e.mu.Unlock()
	}
}

// departOne removes one joined device from the crowd (chosen from the
// churn stream with a deterministic probe walk) and schedules its
// re-registration.
func (e *engine) departOne(churnRNG *rng.RNG, now float64) {
	start := churnRNG.Intn(len(e.devs))
	for i := 0; i < len(e.devs); i++ {
		d := e.devs[(start+i)%len(e.devs)]
		if !d.joined {
			continue
		}
		d.joined = false
		d.buffer = nil // uncollected samples leave with the device
		e.rep.Churn.Leaves++
		if e.spec.Churn.RejoinAfter > 0 {
			e.push(&event{at: now + e.spec.Churn.RejoinAfter, kind: evRejoin, dev: (start + i) % len(e.devs)})
		}
		return
	}
}

// eval measures held-out test error through the probe's real checkout.
func (e *engine) eval(ctx context.Context, probe *transport.HTTPClient, n int) error {
	co, err := probe.Checkout(ctx, "probe", e.probeToken)
	if err != nil {
		return fmt.Errorf("scenario: probe checkout: %w", err)
	}
	e.httpCalls++
	classes, dim := e.model.Shape()
	w, err := linalg.NewMatrixFrom(classes, dim, co.Params)
	if err != nil {
		return err
	}
	e.rep.Curve = append(e.rep.Curve, CurvePoint{
		Samples:   n,
		TestError: metrics.TestError(e.model, w, e.evalSet),
	})
	return nil
}

// drainDue processes every event due by now, in (at, seq) order, in
// waves: a wave is the currently due set, its follow-ups are pushed
// after the wave in wave order and picked up by the next wave if they
// are themselves due. With Workers == 1 waves run sequentially — the
// determinism contract. With Workers > 1 a wave's events are grouped by
// device (preserving per-device order) and groups run concurrently
// under a bounded pool.
func (e *engine) drainDue(ctx context.Context, now float64) error {
	for {
		var due []*event
		for len(e.queue) > 0 && e.queue[0].at <= now {
			due = append(due, heap.Pop(&e.queue).(*event))
		}
		if len(due) == 0 {
			return nil
		}
		followups := make([]*event, len(due))
		if e.spec.Workers <= 1 {
			for i, ev := range due {
				f, err := e.process(ctx, ev)
				if err != nil {
					return err
				}
				followups[i] = f
			}
		} else if err := e.processParallel(ctx, due, followups); err != nil {
			return err
		}
		for _, f := range followups {
			if f != nil {
				e.push(f)
			}
		}
	}
}

// processParallel executes one wave with per-device ordering: events
// are grouped by device in wave order and each group runs on one
// worker slot.
func (e *engine) processParallel(ctx context.Context, due []*event, followups []*event) error {
	groups := make(map[int][]int) // device -> due indices, in order
	var order []int
	for i, ev := range due {
		if _, ok := groups[ev.dev]; !ok {
			order = append(order, ev.dev)
		}
		groups[ev.dev] = append(groups[ev.dev], i)
	}
	sem := make(chan struct{}, e.spec.Workers)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for _, dev := range order {
		idxs := groups[dev]
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			for _, i := range idxs {
				f, err := e.process(ctx, due[i])
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				followups[i] = f
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// process executes one event against the real stack and returns its
// follow-up event, if any. Only fatal errors are returned; expected
// rejections (stale credentials after a rejoin rotated the token) are
// counted on the report.
func (e *engine) process(ctx context.Context, ev *event) (*event, error) {
	d := e.devs[ev.dev]
	switch ev.kind {
	case evRejoin:
		if err := e.register(ctx, d); err != nil {
			return nil, fmt.Errorf("scenario: rejoin %s: %w", d.id, err)
		}
		e.mu.Lock()
		e.rep.Churn.Rejoins++
		e.mu.Unlock()
		return nil, nil

	case evFlush:
		co, err := ev.client.Checkout(ctx, d.id, ev.token)
		e.mu.Lock()
		e.httpCalls++
		e.mu.Unlock()
		if err != nil {
			e.countReject(err)
			return nil, nil
		}
		classes, dim := e.model.Shape()
		w, err := linalg.NewMatrixFrom(classes, dim, co.Params)
		if err != nil {
			return nil, err
		}
		g := optimizer.AverageGradient(e.model, w, ev.batch, 0)
		errCount := 0
		labelCounts := make([]int, classes)
		for _, s := range ev.batch {
			if e.model.Misclassified(w, s) {
				errCount++
			}
			labelCounts[s.Y]++
		}
		if d.byzantine {
			// A malignant device poisons its gradient but reports its
			// counts honestly — the stealthiest variant: Eq. (14)'s
			// progress estimates stay plausible while the model degrades.
			attack.Corrupt(g, e.strat, e.spec.Byzantine.Magnitude, d.noise)
		} else {
			privacy.PerturbGradient(g, len(ev.batch), e.sens, e.budget.Gradient, d.noise)
		}
		errCount = privacy.SanitizeCount(errCount, e.budget.ErrCount, d.noise)
		labelCounts = privacy.SanitizeCounts(labelCounts, e.budget.LabelCount, d.noise)
		return &event{
			at: ev.at + ev.ciDelay, kind: evDeliver, dev: ev.dev,
			token: ev.token, client: ev.client,
			req: &core.CheckinRequest{
				Grad:        g.Data(),
				NumSamples:  len(ev.batch),
				ErrCount:    errCount,
				LabelCounts: labelCounts,
				Version:     co.Version,
			},
		}, nil

	case evDeliver:
		err := ev.client.Checkin(ctx, d.id, ev.token, ev.req)
		e.mu.Lock()
		e.httpCalls++
		e.mu.Unlock()
		if err != nil {
			e.countReject(err)
			return nil, nil
		}
		e.mu.Lock()
		e.rep.Checkins++
		if d.byzantine {
			e.rep.ByzantineCheckins++
		}
		e.mu.Unlock()
		return nil, nil
	}
	return nil, fmt.Errorf("scenario: unknown event kind %d", ev.kind)
}

// countReject classifies a device-visible request failure.
func (e *engine) countReject(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if errors.Is(err, core.ErrAuth) {
		e.rep.RejectedAuth++
	} else {
		e.rep.RejectedOther++
	}
}
