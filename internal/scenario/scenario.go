// Package scenario is the deterministic large-scale harness of the
// ROADMAP's "million-device scenario harness" item: it drives crowds of
// virtual devices through the REAL transport/hub/core stack — the same
// HTTP handler, routing, batching and registry code production runs —
// rather than the in-process loop of internal/sim, and composes the
// orthogonal stressors the paper's Section V studies one at a time:
//
//   - device churn: join/leave mid-training with credential
//     re-registration (token rotation, in-flight old-token rejects);
//   - stragglers: a cohort whose request/checkout/checkin legs are
//     delayed by simnet's Δ = τ·M·F_s model, delivering stale gradients;
//   - byzantine cohorts: internal/attack's poisoning strategies checked
//     in through the real write path;
//   - device-local DP noise: internal/privacy's Eq. (10)–(12)
//     sanitization at the configured budget.
//
// Time is virtual, in global-sample units exactly like internal/sim: a
// min-heap of events keyed on (at, seq) advances one sample per tick, and
// every piece of randomness (assignment, arrival order, cohort selection,
// churn schedule, delays, noise) flows through dedicated internal/rng
// split streams. With Workers == 1 (the default) the harness performs one
// HTTP request at a time, so a fixed seed reproduces the same schedule of
// joins, drops, delays, attacks AND the same server-side state evolution
// bit for bit — the determinism contract Report.CanonicalJSON captures.
// Workers > 1 keeps the schedule deterministic but races request
// interleaving for throughput (see docs/SCENARIOS.md).
//
// Scale: devices are multiplexed virtual endpoints (a struct plus a
// pooled HTTP connection), not goroutines, so crowds are bounded by
// memory, not threads — tens of thousands in tests, scalable toward
// millions with the same engine.
package scenario

import (
	"fmt"
	"time"

	"github.com/crowdml/crowdml/internal/transport"
)

// Topology selects which real server arrangement the crowd drives.
type Topology string

const (
	// TopologySingle is one leader task on one hub behind one HTTP server.
	TopologySingle Topology = "single"
	// TopologyFollower is a leader plus a read-only follower replica fed
	// by WAL shipping; devices contact the follower first and follow the
	// 409 leader hint (exactly one redirect hop per registration).
	TopologyFollower Topology = "follower"
	// TopologySharded is a sharded logical task: Shards member leaders
	// behind the routing front-end, merged reads, device-hash writes.
	TopologySharded Topology = "sharded"
)

// ChurnSpec schedules mid-training departures and re-registrations.
type ChurnSpec struct {
	// Every departs one joined device every this many global samples
	// (0 disables churn).
	Every int `json:"every"`
	// RejoinAfter re-registers the departed device (fresh credentials —
	// the server rotates its token) this many global samples later.
	// 0 means departed devices never return.
	RejoinAfter float64 `json:"rejoinAfter"`
}

// StragglerSpec delays a cohort's communication legs, making them deliver
// stale gradients — the paper's Δ = τ·M·F_s delay model over real HTTP.
type StragglerSpec struct {
	// Fraction of devices that straggle, F_s in [0, 1].
	Fraction float64 `json:"fraction"`
	// Tau is τ: each of the three legs (request, checkout, checkin) draws
	// uniformly from [0, τ] in global-sample units.
	Tau float64 `json:"tau"`
}

// ByzantineSpec makes a cohort check in poisoned gradients through the
// real write path, using internal/attack's strategies.
type ByzantineSpec struct {
	// Fraction of devices that are malignant, in [0, 1).
	Fraction float64 `json:"fraction"`
	// Strategy is "large-gradient" or "sign-flip" (attack.ParseStrategy).
	Strategy string `json:"strategy"`
	// Magnitude scales the adversarial gradients (default 10).
	Magnitude float64 `json:"magnitude"`
}

// PrivacySpec sets the device-local DP budget in the paper's ε⁻¹
// plotting convention (0 disables noise).
type PrivacySpec struct {
	// GradientEpsInv is ε⁻¹ for the Eq. (10) gradient mechanism.
	GradientEpsInv float64 `json:"gradientEpsInv"`
	// CountEpsInv is ε⁻¹ for the Eq. (11)–(12) count mechanisms.
	CountEpsInv float64 `json:"countEpsInv"`
}

// Spec is one scenario: a topology, a crowd, and composed stressors.
// The zero value is not runnable; see Builtin for ready-made scenarios
// and Validate for the required fields.
type Spec struct {
	// Name labels the run in reports and file names.
	Name string `json:"name"`
	// Topology is single, follower or sharded.
	Topology Topology `json:"topology"`
	// Shards is the member count for TopologySharded (default 4).
	Shards int `json:"shards,omitempty"`
	// Devices is the crowd size M.
	Devices int `json:"devices"`
	// Samples is the virtual-run length in global samples (ticks).
	Samples int `json:"samples"`
	// Minibatch is the device buffer size b before a flush (default 1).
	Minibatch int `json:"minibatch,omitempty"`
	// Classes and Dim shape the logistic-regression task.
	Classes int `json:"classes"`
	Dim     int `json:"dim"`
	// TrainSize and TestSize size the generated mixture dataset.
	TrainSize int `json:"trainSize"`
	TestSize  int `json:"testSize"`
	// LearningRate is c in the InvSqrt schedule η(t) = c/√t.
	LearningRate float64 `json:"learningRate"`
	// Updater is "sgd" (default) or "adagrad" (Remark 3's robust rule;
	// LearningRate is its Eta).
	Updater string `json:"updater,omitempty"`
	// Seed drives every random choice; same seed, same report
	// (modulo wall-clock fields) when Workers <= 1.
	Seed uint64 `json:"seed"`
	// Stressors; zero values disable each.
	Churn     ChurnSpec     `json:"churn,omitempty"`
	Straggler StragglerSpec `json:"straggler,omitempty"`
	Byzantine ByzantineSpec `json:"byzantine,omitempty"`
	Privacy   PrivacySpec   `json:"privacy,omitempty"`
	// EvalEvery measures test error every this many global samples
	// (default Samples/25).
	EvalEvery int `json:"evalEvery,omitempty"`
	// EvalSubset caps test samples per evaluation (0 = all).
	EvalSubset int `json:"evalSubset,omitempty"`
	// Workers bounds concurrent HTTP requests per event wave. 1 (the
	// default) is the determinism contract; larger values trade
	// bit-reproducibility of the report for wall-clock speed.
	Workers int `json:"workers,omitempty"`
	// Wire selects the device wire format: "json" (default), "binary" or
	// "binary-delta" (docs/WIRE.md). Both binary encodings are bit-exact
	// for float64 parameters, so same-seed reports are identical across
	// wire formats — the convergence-equivalence tier-1 test pins this.
	Wire string `json:"wire,omitempty"`
	// MergeEvery only applies to TopologySharded: the harness calls the
	// router's merge deterministically from the event loop every tick, so
	// this is the wall-clock fallback cadence handed to the router
	// (default 1h, i.e. effectively never).
	MergeEvery time.Duration `json:"-"`
}

// withDefaults returns a copy with optional fields defaulted.
func (s Spec) withDefaults() Spec {
	if s.Minibatch < 1 {
		s.Minibatch = 1
	}
	if s.Shards < 1 {
		s.Shards = 4
	}
	if s.EvalEvery <= 0 {
		s.EvalEvery = s.Samples / 25
		if s.EvalEvery == 0 {
			s.EvalEvery = 1
		}
	}
	if s.Workers < 1 {
		s.Workers = 1
	}
	if s.Updater == "" {
		s.Updater = "sgd"
	}
	if s.Wire == "" {
		s.Wire = "json"
	}
	if s.Byzantine.Fraction > 0 && s.Byzantine.Magnitude <= 0 {
		s.Byzantine.Magnitude = 10
	}
	if s.MergeEvery <= 0 {
		s.MergeEvery = time.Hour
	}
	return s
}

// Validate reports the first problem with the spec.
func (s Spec) Validate() error {
	switch s.Topology {
	case TopologySingle, TopologyFollower, TopologySharded:
	default:
		return fmt.Errorf("scenario: unknown topology %q", s.Topology)
	}
	if s.Devices < 1 {
		return fmt.Errorf("scenario: Devices must be >= 1")
	}
	if s.Samples < 1 {
		return fmt.Errorf("scenario: Samples must be >= 1")
	}
	if s.Classes < 2 || s.Dim < 1 {
		return fmt.Errorf("scenario: invalid task shape C=%d D=%d", s.Classes, s.Dim)
	}
	if s.TrainSize < 1 {
		return fmt.Errorf("scenario: TrainSize must be >= 1")
	}
	if s.LearningRate <= 0 {
		return fmt.Errorf("scenario: LearningRate must be > 0")
	}
	switch s.Updater {
	case "", "sgd", "adagrad":
	default:
		return fmt.Errorf("scenario: unknown updater %q", s.Updater)
	}
	if _, err := transport.ParseWireFormat(s.Wire); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if f := s.Straggler.Fraction; f < 0 || f > 1 {
		return fmt.Errorf("scenario: straggler fraction %v outside [0, 1]", f)
	}
	if f := s.Byzantine.Fraction; f < 0 || f >= 1 {
		return fmt.Errorf("scenario: byzantine fraction %v outside [0, 1)", f)
	}
	if s.Byzantine.Fraction > 0 {
		if _, err := parseStrategy(s.Byzantine.Strategy); err != nil {
			return err
		}
	}
	return nil
}

// Builtin returns one of the named ready-made scenarios (the ones the CI
// smoke step and the acceptance tests run), or false.
func Builtin(name string) (Spec, bool) {
	for _, s := range builtins {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// BuiltinNames lists the built-in scenario names, in declaration order.
func BuiltinNames() []string {
	names := make([]string, len(builtins))
	for i, s := range builtins {
		names[i] = s.Name
	}
	return names
}

// builtins are the named scenarios: the ~2k-device smoke set that doubles
// as tier-1 tests, each under a minute single-threaded. churn-straggler-2k
// is the single-leader control the 4-shard variant is pinned against.
var builtins = []Spec{
	{
		Name:     "churn-straggler-2k",
		Topology: TopologySingle,
		Devices:  2000, Samples: 6000, Minibatch: 1,
		Classes: 3, Dim: 10, TrainSize: 3000, TestSize: 600,
		LearningRate: 8, Seed: 42,
		Churn:     ChurnSpec{Every: 50, RejoinAfter: 120},
		Straggler: StragglerSpec{Fraction: 0.2, Tau: 200},
		Privacy:   PrivacySpec{GradientEpsInv: 0.05, CountEpsInv: 1},
	},
	{
		Name:     "churn-straggler-2k-4shard",
		Topology: TopologySharded, Shards: 4,
		Devices: 2000, Samples: 6000, Minibatch: 1,
		Classes: 3, Dim: 10, TrainSize: 3000, TestSize: 600,
		LearningRate: 8, Seed: 42,
		Churn:     ChurnSpec{Every: 50, RejoinAfter: 120},
		Straggler: StragglerSpec{Fraction: 0.2, Tau: 200},
		Privacy:   PrivacySpec{GradientEpsInv: 0.05, CountEpsInv: 1},
	},
	{
		Name:     "byzantine-2k",
		Topology: TopologySingle,
		Devices:  2000, Samples: 6000, Minibatch: 1,
		Classes: 3, Dim: 10, TrainSize: 3000, TestSize: 600,
		LearningRate: 8, Seed: 42,
		Byzantine: ByzantineSpec{Fraction: 0.3, Strategy: "sign-flip", Magnitude: 10},
	},
	{
		Name:     "follower-hint-1k",
		Topology: TopologyFollower,
		Devices:  1000, Samples: 3000, Minibatch: 1,
		Classes: 3, Dim: 10, TrainSize: 2000, TestSize: 400,
		LearningRate: 8, Seed: 42,
		Straggler: StragglerSpec{Fraction: 0.1, Tau: 100},
	},
}
