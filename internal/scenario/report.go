package scenario

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// CurvePoint is one convergence measurement: held-out test error after
// the given number of global samples — the x-axis of the paper's
// Figs. 4–9.
type CurvePoint struct {
	Samples   int     `json:"samples"`
	TestError float64 `json:"testError"`
}

// ChurnReport counts the churn schedule's effects.
type ChurnReport struct {
	// Joins is every successful registration, initial or rejoin.
	Joins int `json:"joins"`
	// Leaves is scheduled departures.
	Leaves int `json:"leaves"`
	// Rejoins is departed devices that re-registered (token rotation).
	Rejoins int `json:"rejoins"`
}

// WallClock is the timing section of a report. It is the ONLY part that
// may differ between two same-seed runs; CanonicalJSON zeroes it.
type WallClock struct {
	DurationSeconds float64 `json:"durationSeconds"`
	CheckinsPerSec  float64 `json:"checkinsPerSec"`
	RequestsPerSec  float64 `json:"requestsPerSec"`
}

// Report is the machine-readable outcome of one scenario run. With
// Workers <= 1 every field except WallClock is a deterministic function
// of the Spec (see docs/SCENARIOS.md for the determinism contract and a
// field-by-field reading guide).
type Report struct {
	Scenario string   `json:"scenario"`
	Topology Topology `json:"topology"`
	Shards   int      `json:"shards,omitempty"`
	Seed     uint64   `json:"seed"`
	Devices  int      `json:"devices"`
	Workers  int      `json:"workers"`

	// GlobalSamples is the virtual-run length actually executed.
	GlobalSamples int `json:"globalSamples"`
	// LostSamples arrived at departed devices and were never collected.
	LostSamples int `json:"lostSamples"`

	// Checkins is client-observed accepted checkins; RejectedAuth counts
	// checkins/checkouts refused with stale credentials after a rejoin
	// rotated the token; RejectedOther is every other write failure.
	// Retries counts 409 leader-hint redirect hops devices followed.
	Checkins      int `json:"checkins"`
	RejectedAuth  int `json:"rejectedAuth"`
	RejectedOther int `json:"rejectedOther"`
	Retries       int `json:"retries"`

	Churn ChurnReport `json:"churn"`

	// ByzantineDevices/Checkins and StragglerDevices size the cohorts.
	ByzantineDevices  int `json:"byzantineDevices"`
	ByzantineCheckins int `json:"byzantineCheckins"`
	StragglerDevices  int `json:"stragglerDevices"`

	// ServerIteration and the Eq. (14) estimate come from the real
	// /stats endpoint at the end of the run.
	ServerIteration int      `json:"serverIteration"`
	ErrorEstimate   *float64 `json:"errorEstimate,omitempty"`

	// Convergence: test error vs global samples, and its final value.
	Curve          []CurvePoint `json:"curve"`
	FinalTestError float64      `json:"finalTestError"`

	// FollowerConsistent is set by the follower topology: whether the
	// follower's replicated state matched the leader's bit for bit after
	// catch-up.
	FollowerConsistent *bool `json:"followerConsistent,omitempty"`

	// MetricsDeltas is the end-minus-start change of the deterministic
	// counter families scraped from the real /v1/metrics endpoint,
	// keyed by the full series name including labels.
	MetricsDeltas map[string]float64 `json:"metricsDeltas"`

	WallClock WallClock `json:"wallClock"`
}

// CanonicalJSON renders the report with WallClock zeroed — the byte
// representation two same-seed Workers=1 runs must agree on exactly.
func (r *Report) CanonicalJSON() ([]byte, error) {
	cp := *r
	cp.WallClock = WallClock{}
	return json.MarshalIndent(&cp, "", "  ")
}

// JSON renders the full report, wall-clock fields included.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// deterministicMetricFamilies is the allowlist of scraped counter
// families whose deltas are a pure function of the virtual schedule when
// Workers == 1. Families driven by wall-clock machinery (HTTP request
// counts inflated by replicator feed polls, merge counts, every
// *_seconds histogram) are deliberately excluded so same-seed reports
// stay byte-identical.
var deterministicMetricFamilies = []string{
	"crowdml_checkouts_total",
	"crowdml_checkins_applied_total",
	"crowdml_checkins_rejected_total",
	"crowdml_shard_routed_requests_total",
}

// scrapeMetrics fetches baseURL's Prometheus exposition and returns the
// allowlisted series as name{labels} -> value.
func scrapeMetrics(baseURL string) (map[string]float64, error) {
	resp, err := http.Get(baseURL + "/v1/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scenario: metrics scrape: status %d", resp.StatusCode)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		series, valStr := line[:sp], line[sp+1:]
		if !allowlisted(series) {
			continue
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		out[series] = v
	}
	return out, sc.Err()
}

// allowlisted reports whether a series belongs to a deterministic family.
func allowlisted(series string) bool {
	name := series
	if i := strings.IndexByte(series, '{'); i >= 0 {
		name = series[:i]
	}
	for _, fam := range deterministicMetricFamilies {
		if name == fam {
			return true
		}
	}
	return false
}

// metricsDelta subtracts the before scrape from the after scrape,
// dropping zero deltas so reports stay small.
func metricsDelta(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}
