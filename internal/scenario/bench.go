package scenario

import (
	"context"
	"fmt"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/dataset"
	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/privacy"
	"github.com/crowdml/crowdml/internal/rng"
)

// Bench is a pre-built stack plus a registered device pool for
// throughput benchmarking: Step performs one complete virtual-device
// flush cycle — real HTTP checkout, local gradient + DP sanitization,
// real HTTP checkin — the scenario engine's hot path with the virtual
// clock factored out.
type Bench struct {
	stack   *stack
	model   model.Model
	sens    float64
	budget  privacy.Budget
	devs    []*vdevice
	batches [][]model.Sample
}

// NewBench builds the spec's topology, registers the device pool and
// pre-slices one minibatch per device.
func NewBench(spec Spec) (*Bench, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ctx := context.Background()
	m := model.NewLogisticRegression(spec.Classes, spec.Dim)
	ds, err := dataset.GenerateMixture(dataset.MixtureConfig{
		Name: spec.Name, Classes: spec.Classes, Dim: spec.Dim,
		TrainSize: spec.TrainSize, TestSize: spec.TestSize,
		MeanScale: 1, NoiseScale: 0.35, Seed: spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	st, err := buildStack(ctx, spec, m)
	if err != nil {
		return nil, err
	}
	root := rng.New(spec.Seed)
	shards := dataset.Assign(ds.Train, spec.Devices, root.Split())
	noiseRoot := root.Split()
	entry := st.clientFor(st.entryURL)

	b := &Bench{
		stack: st,
		model: m,
		sens:  m.GradientSensitivity(),
		budget: privacy.Budget{
			Gradient:   privacy.FromInv(spec.Privacy.GradientEpsInv),
			ErrCount:   privacy.FromInv(spec.Privacy.CountEpsInv),
			LabelCount: privacy.FromInv(spec.Privacy.CountEpsInv),
		},
	}
	for i := 0; i < spec.Devices; i++ {
		d := &vdevice{
			id:     fmt.Sprintf("dev-%05d", i),
			client: entry,
			noise:  noiseRoot.Split(),
		}
		tok, err := d.client.Register(ctx, d.id, joinKey)
		if err != nil {
			st.close()
			return nil, err
		}
		d.token = tok
		batch := shards[i]
		if len(batch) > spec.Minibatch {
			batch = batch[:spec.Minibatch]
		}
		if len(batch) == 0 {
			continue
		}
		b.devs = append(b.devs, d)
		b.batches = append(b.batches, batch)
	}
	if len(b.devs) == 0 {
		st.close()
		return nil, fmt.Errorf("scenario: bench pool is empty")
	}
	return b, nil
}

// Step runs the i-th flush cycle: checkout, gradient, sanitize, checkin.
func (b *Bench) Step(ctx context.Context, i int) error {
	d := b.devs[i%len(b.devs)]
	batch := b.batches[i%len(b.batches)]
	co, err := d.client.Checkout(ctx, d.id, d.token)
	if err != nil {
		return err
	}
	classes, dim := b.model.Shape()
	w, err := linalg.NewMatrixFrom(classes, dim, co.Params)
	if err != nil {
		return err
	}
	g := optimizer.AverageGradient(b.model, w, batch, 0)
	errCount := 0
	labelCounts := make([]int, classes)
	for _, s := range batch {
		if b.model.Misclassified(w, s) {
			errCount++
		}
		labelCounts[s.Y]++
	}
	privacy.PerturbGradient(g, len(batch), b.sens, b.budget.Gradient, d.noise)
	errCount = privacy.SanitizeCount(errCount, b.budget.ErrCount, d.noise)
	labelCounts = privacy.SanitizeCounts(labelCounts, b.budget.LabelCount, d.noise)
	return d.client.Checkin(ctx, d.id, d.token, &core.CheckinRequest{
		Grad:        g.Data(),
		NumSamples:  len(batch),
		ErrCount:    errCount,
		LabelCounts: labelCounts,
		Version:     co.Version,
	})
}

// Close tears the stack down.
func (b *Bench) Close() { b.stack.close() }
