package scenario

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"time"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/hub"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/replica"
	"github.com/crowdml/crowdml/internal/shard"
	"github.com/crowdml/crowdml/internal/store"
	"github.com/crowdml/crowdml/internal/telemetry"
	"github.com/crowdml/crowdml/internal/transport"
)

// taskID is the logical task every scenario crowd addresses.
const taskID = "scenario"

// joinKey is the enrollment key the harness's virtual devices present.
const joinKey = "scenario-join"

// stack is one running topology: real hubs behind real HTTP servers,
// plus the hooks the engine needs to keep runs deterministic.
type stack struct {
	// entryURL is the base URL devices contact first. In the follower
	// topology this is the follower, whose 409 leader hints redirect
	// every device's writes — exactly the production join flow.
	entryURL string
	// metricsURL is the exposition endpoint the report scrapes (the
	// leader's, where all deterministic counters live).
	metricsURL string
	// sync deterministically publishes pending server-side state to the
	// read path (the sharded router's merge). Nil when reads are always
	// current. Called from the single-threaded event loop only.
	sync func()
	// finish runs end-of-run topology checks (the follower catch-up and
	// bit-exact comparison) and records them on the report.
	finish func(rep *Report) error
	// close tears the whole stack down.
	close func()

	// wire is the device wire format (Spec.Wire): every cached client
	// speaks it on checkout/checkin.
	wire transport.WireFormat

	// clients caches one task-bound HTTP client per base URL, shared by
	// every virtual device pointed at that URL.
	mu      sync.Mutex
	clients map[string]*transport.HTTPClient
}

// clientFor returns the shared task-bound client for a base URL.
func (st *stack) clientFor(baseURL string) *transport.HTTPClient {
	st.mu.Lock()
	defer st.mu.Unlock()
	c, ok := st.clients[baseURL]
	if !ok {
		c = transport.NewHTTPClient(baseURL, nil).WithTask(taskID)
		if st.wire != transport.WireJSON {
			c = c.WithWire(st.wire)
		}
		st.clients[baseURL] = c
	}
	return c
}

// serverConfig builds one member/leader ServerConfig. Called once per
// server — updaters are stateful and must never be shared.
func (s Spec) serverConfig(m model.Model) core.ServerConfig {
	var up optimizer.Updater
	if s.Updater == "adagrad" {
		up = &optimizer.AdaGrad{Eta: s.LearningRate}
	} else {
		up = &optimizer.SGD{Schedule: optimizer.InvSqrt{C: s.LearningRate}}
	}
	return core.ServerConfig{Model: m, Updater: up}
}

// buildStack assembles the spec's topology from the real layers: hub
// tasks (sharded members, follower replicas), the transport handler with
// enrollment and telemetry enabled, and httptest servers carrying real
// TCP traffic.
func buildStack(ctx context.Context, spec Spec, m model.Model) (*stack, error) {
	var st *stack
	var err error
	switch spec.Topology {
	case TopologySingle:
		st, err = buildSingle(ctx, spec, m)
	case TopologySharded:
		st, err = buildSharded(ctx, spec, m)
	case TopologyFollower:
		st, err = buildFollower(ctx, spec, m)
	default:
		return nil, fmt.Errorf("scenario: unknown topology %q", spec.Topology)
	}
	if err != nil {
		return nil, err
	}
	// The wire format is a pure encoding choice (Validate already vetted
	// it); the replication feed and stats scrapes stay JSON regardless.
	st.wire, _ = transport.ParseWireFormat(spec.Wire)
	return st, nil
}

// newHandler wires a hub behind the real HTTP handler with enrollment
// and metrics enabled, exactly as cmd/crowdml-server does.
func newHandler(h *hub.Hub, reg *telemetry.Registry) *transport.Handler {
	hd := transport.NewHandler(h)
	hd.EnableEnrollment(joinKey)
	hd.EnableMetrics(reg)
	return hd
}

func buildSingle(ctx context.Context, spec Spec, m model.Model) (*stack, error) {
	reg := telemetry.NewRegistry()
	h := hub.New()
	if _, err := h.CreateTask(ctx, taskID, spec.serverConfig(m), hub.WithMetrics(reg)); err != nil {
		return nil, err
	}
	srv := httptest.NewServer(newHandler(h, reg))
	return &stack{
		entryURL:   srv.URL,
		metricsURL: srv.URL,
		clients:    make(map[string]*transport.HTTPClient),
		close: func() {
			srv.Close()
			_ = h.Close(context.Background())
		},
	}, nil
}

func buildSharded(ctx context.Context, spec Spec, m model.Model) (*stack, error) {
	reg := telemetry.NewRegistry()
	h := hub.New()
	// The router's wall-clock merger is parked on a huge interval; the
	// engine calls Merge from the event loop instead, so the merged view
	// advances at deterministic points of virtual time.
	g, err := shard.New(ctx, h, taskID,
		func(int) core.ServerConfig { return spec.serverConfig(m) },
		shard.WithShards(spec.Shards),
		shard.WithMergeInterval(spec.MergeEvery),
		shard.WithMetrics(reg))
	if err != nil {
		return nil, err
	}
	srv := httptest.NewServer(newHandler(h, reg))
	return &stack{
		entryURL:   srv.URL,
		metricsURL: srv.URL,
		sync:       g.Merge,
		clients:    make(map[string]*transport.HTTPClient),
		close: func() {
			srv.Close()
			_ = g.Close(context.Background())
			_ = h.Close(context.Background())
		},
	}, nil
}

// dropSilent removes device entries that never checked in.
func dropSilent(st *core.ServerState) {
	for id, e := range st.Devices {
		if e.Checkins == 0 {
			delete(st.Devices, id)
		}
	}
}

func buildFollower(ctx context.Context, spec Spec, m model.Model) (*stack, error) {
	reg := telemetry.NewRegistry()
	leaderHub := hub.New()
	leaderTask, err := leaderHub.CreateTask(ctx, taskID, spec.serverConfig(m),
		hub.WithMetrics(reg), hub.WithStore(store.NewMemStore()))
	if err != nil {
		return nil, err
	}
	leaderSrv := httptest.NewServer(newHandler(leaderHub, reg))

	feed := transport.NewHTTPClient(leaderSrv.URL, nil).WithTask(taskID)
	followerCfg := spec.serverConfig(m)
	followerCfg.AuthFallback = feed.AuthProbe
	followerHub := hub.New()
	followerTask, err := followerHub.CreateTask(ctx, taskID, followerCfg,
		hub.AsReplicaOf(leaderSrv.URL))
	if err != nil {
		leaderSrv.Close()
		_ = leaderHub.Close(context.Background())
		return nil, err
	}
	followerSrv := httptest.NewServer(newHandler(followerHub, nil))
	rep, err := replica.New(replica.Config{
		Task:         followerTask,
		Feed:         feed,
		PollInterval: 2 * time.Millisecond,
		BackoffMin:   2 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
	})
	if err != nil {
		followerSrv.Close()
		leaderSrv.Close()
		_ = followerHub.Close(context.Background())
		_ = leaderHub.Close(context.Background())
		return nil, err
	}
	repCtx, cancel := context.WithCancel(context.Background())
	rep.Start(repCtx)

	return &stack{
		entryURL:   followerSrv.URL,
		metricsURL: leaderSrv.URL,
		clients:    make(map[string]*transport.HTTPClient),
		finish: func(r *Report) error {
			leader := leaderTask.Server()
			deadline := time.Now().Add(30 * time.Second)
			for time.Now().Before(deadline) {
				lag, ok := followerTask.ReplicationLag()
				if ok && lag == 0 && followerTask.Server().Iteration() == leader.Iteration() {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			// Registrations are not journaled (credentials never leave the
			// leader), so enrolled-but-silent devices — the probe, and any
			// device the arrival schedule never picked — exist only in the
			// leader's registry. The replicated learning state is everything
			// else: compare bit for bit with zero-checkin entries dropped.
			ls, fs := leader.ExportState(), followerTask.Server().ExportState()
			dropSilent(ls)
			dropSilent(fs)
			consistent := reflect.DeepEqual(ls, fs)
			r.FollowerConsistent = &consistent
			if !consistent {
				return fmt.Errorf("scenario: follower state diverged from leader")
			}
			return nil
		},
		close: func() {
			cancel()
			rep.Stop()
			followerSrv.Close()
			leaderSrv.Close()
			_ = followerHub.Close(context.Background())
			_ = leaderHub.Close(context.Background())
		},
	}, nil
}
