// Package metrics provides the evaluation measurements the paper reports:
// held-out test error, the time-averaged online error Err(t) of Fig. 3,
// confusion matrices, and (x, y) series with multi-trial averaging.
package metrics

import (
	"fmt"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
)

// TestError returns the misclassification rate of w on samples
// (0 for an empty set).
func TestError(m model.Model, w *linalg.Matrix, samples []model.Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	errs := 0
	for _, s := range samples {
		if m.Misclassified(w, s) {
			errs++
		}
	}
	return float64(errs) / float64(len(samples))
}

// ConfusionMatrix returns the C×C count matrix with true classes as rows
// and predicted classes as columns.
func ConfusionMatrix(m model.Model, w *linalg.Matrix, samples []model.Sample) *linalg.Matrix {
	classes, _ := m.Shape()
	cm := linalg.NewMatrix(classes, classes)
	for _, s := range samples {
		pred := m.Predict(w, s.X)
		cm.Set(s.Y, pred, cm.At(s.Y, pred)+1)
	}
	return cm
}

// OnlineError tracks the time-averaged misclassification error
// Err(t) = (1/t)·Σ_{i≤t} I[y_i ≠ ŷ_i] used in the activity-recognition
// experiment (Fig. 3). The zero value is ready to use.
type OnlineError struct {
	total int
	errs  int
}

// Observe records one prediction outcome.
func (o *OnlineError) Observe(misclassified bool) {
	o.total++
	if misclassified {
		o.errs++
	}
}

// Value returns Err(t), 0 before any observation.
func (o *OnlineError) Value() float64 {
	if o.total == 0 {
		return 0
	}
	return float64(o.errs) / float64(o.total)
}

// Count returns the number of observations t.
func (o *OnlineError) Count() int { return o.total }

// Series is one named curve: y values measured at x positions
// (iteration counts in all the paper's figures).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one measurement.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Final returns the last y value (the asymptotic error), or 0 when empty.
func (s *Series) Final() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// Min returns the smallest y value, or 0 when empty.
func (s *Series) Min() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	m := s.Y[0]
	for _, v := range s.Y[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// AverageSeries averages multiple trials of the same curve pointwise
// (all trials must share X grids; the name is taken from the first).
// This is the "averaged test errors from 10 trials" of Section V-C.
func AverageSeries(trials []Series) (Series, error) {
	if len(trials) == 0 {
		return Series{}, fmt.Errorf("metrics: no trials to average")
	}
	n := trials[0].Len()
	for i, tr := range trials {
		if tr.Len() != n {
			return Series{}, fmt.Errorf("metrics: trial %d has %d points, want %d",
				i, tr.Len(), n)
		}
	}
	out := Series{Name: trials[0].Name, X: linalg.Copy(trials[0].X), Y: make([]float64, n)}
	for _, tr := range trials {
		linalg.Axpy(1, tr.Y, out.Y)
	}
	linalg.Scale(1/float64(len(trials)), out.Y)
	return out, nil
}

// ConstantSeries returns a flat line (the "Central (batch)" reference in
// Figs. 4–9, which is not incremental and therefore constant).
func ConstantSeries(name string, x []float64, y float64) Series {
	s := Series{Name: name, X: linalg.Copy(x), Y: make([]float64, len(x))}
	for i := range s.Y {
		s.Y[i] = y
	}
	return s
}
