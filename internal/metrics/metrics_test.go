package metrics

import (
	"math"
	"testing"

	"github.com/crowdml/crowdml/internal/linalg"
	"github.com/crowdml/crowdml/internal/model"
)

func twoClassFixture() (model.Model, *linalg.Matrix, []model.Sample) {
	m := model.NewLogisticRegression(2, 2)
	w := model.NewParams(m)
	w.Set(0, 0, 1)
	w.Set(1, 1, 1)
	samples := []model.Sample{
		{X: []float64{1, 0}, Y: 0}, // correct
		{X: []float64{0, 1}, Y: 1}, // correct
		{X: []float64{1, 0}, Y: 1}, // wrong
		{X: []float64{0, 1}, Y: 0}, // wrong
	}
	return m, w, samples
}

func TestTestError(t *testing.T) {
	m, w, samples := twoClassFixture()
	if got := TestError(m, w, samples); got != 0.5 {
		t.Errorf("TestError = %v, want 0.5", got)
	}
	if got := TestError(m, w, nil); got != 0 {
		t.Errorf("TestError(empty) = %v, want 0", got)
	}
}

func TestConfusionMatrix(t *testing.T) {
	m, w, samples := twoClassFixture()
	cm := ConfusionMatrix(m, w, samples)
	// Row = true class, col = predicted.
	if cm.At(0, 0) != 1 || cm.At(0, 1) != 1 || cm.At(1, 0) != 1 || cm.At(1, 1) != 1 {
		t.Errorf("confusion matrix = %v", cm.Data())
	}
}

func TestOnlineError(t *testing.T) {
	var o OnlineError
	if o.Value() != 0 || o.Count() != 0 {
		t.Error("zero value should report 0")
	}
	o.Observe(true)
	o.Observe(false)
	o.Observe(false)
	o.Observe(true)
	if got := o.Value(); got != 0.5 {
		t.Errorf("Value = %v, want 0.5", got)
	}
	if o.Count() != 4 {
		t.Errorf("Count = %d", o.Count())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Final() != 0 || s.Min() != 0 {
		t.Error("empty series should report 0")
	}
	s.Append(1, 0.9)
	s.Append(2, 0.3)
	s.Append(3, 0.5)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Final() != 0.5 {
		t.Errorf("Final = %v", s.Final())
	}
	if s.Min() != 0.3 {
		t.Errorf("Min = %v", s.Min())
	}
}

func TestAverageSeries(t *testing.T) {
	a := Series{Name: "x", X: []float64{1, 2}, Y: []float64{0.2, 0.4}}
	b := Series{Name: "x", X: []float64{1, 2}, Y: []float64{0.4, 0.0}}
	avg, err := AverageSeries([]Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.Equal(avg.Y, []float64{0.3, 0.2}, 1e-12) {
		t.Errorf("averaged Y = %v", avg.Y)
	}
	if avg.Name != "x" {
		t.Errorf("name = %q", avg.Name)
	}
	if _, err := AverageSeries(nil); err == nil {
		t.Error("expected error for no trials")
	}
	short := Series{X: []float64{1}, Y: []float64{0.1}}
	if _, err := AverageSeries([]Series{a, short}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
}

func TestConstantSeries(t *testing.T) {
	s := ConstantSeries("batch", []float64{1, 2, 3}, 0.1)
	for i, y := range s.Y {
		if math.Abs(y-0.1) > 1e-15 {
			t.Errorf("Y[%d] = %v", i, y)
		}
	}
	if s.Name != "batch" || s.Len() != 3 {
		t.Errorf("series = %+v", s)
	}
}
