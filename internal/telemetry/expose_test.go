package telemetry

import (
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestExposeCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta_total", "Last family.").Add(7)
	r.Counter("alpha_total", "First family.", L("task", "t1")).Add(3)
	r.Gauge("mid_gauge", "A gauge.").Set(2.5)

	got := expose(t, r)
	want := "# HELP alpha_total First family.\n" +
		"# TYPE alpha_total counter\n" +
		"alpha_total{task=\"t1\"} 3\n" +
		"# HELP mid_gauge A gauge.\n" +
		"# TYPE mid_gauge gauge\n" +
		"mid_gauge 2.5\n" +
		"# HELP zeta_total Last family.\n" +
		"# TYPE zeta_total counter\n" +
		"zeta_total 7\n"
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestExposeHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(9)

	got := expose(t, r)
	want := "# HELP lat_seconds Latency.\n" +
		"# TYPE lat_seconds histogram\n" +
		"lat_seconds_bucket{le=\"0.5\"} 1\n" +
		"lat_seconds_bucket{le=\"1\"} 2\n" +
		"lat_seconds_bucket{le=\"+Inf\"} 3\n" +
		"lat_seconds_sum 9.9\n" +
		"lat_seconds_count 3\n"
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// A histogram that was registered but never observed must still expose
// a complete, well-formed family: all-zero buckets, zero sum and count.
func TestExposeZeroObservationHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("idle_seconds", "Never touched.", []float64{1, 2})

	got := expose(t, r)
	want := "# HELP idle_seconds Never touched.\n" +
		"# TYPE idle_seconds histogram\n" +
		"idle_seconds_bucket{le=\"1\"} 0\n" +
		"idle_seconds_bucket{le=\"2\"} 0\n" +
		"idle_seconds_bucket{le=\"+Inf\"} 0\n" +
		"idle_seconds_sum 0\n" +
		"idle_seconds_count 0\n"
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestExposeLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "x", L("path", `C:\dir`+"\n"+`"quoted"`)).Inc()

	got := expose(t, r)
	wantSample := `m_total{path="C:\\dir\n\"quoted\""} 1` + "\n"
	if !strings.Contains(got, wantSample) {
		t.Fatalf("escaped sample %q not found in:\n%s", wantSample, got)
	}
}

func TestExposeHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "line one\nline \\two").Inc()
	got := expose(t, r)
	want := "# HELP m_total line one\\nline \\\\two\n"
	if !strings.Contains(got, want) {
		t.Fatalf("escaped help %q not found in:\n%s", want, got)
	}
}

func TestExposeSpecialFloatValues(t *testing.T) {
	r := NewRegistry()
	r.Gauge("inf_gauge", "x").Set(math.Inf(1))
	r.Gauge("neg_inf_gauge", "x").Set(math.Inf(-1))
	got := expose(t, r)
	if !strings.Contains(got, "inf_gauge +Inf\n") {
		t.Fatalf("+Inf not rendered:\n%s", got)
	}
	if !strings.Contains(got, "neg_inf_gauge -Inf\n") {
		t.Fatalf("-Inf not rendered:\n%s", got)
	}
}

func TestExposeSeriesSortedByLabelValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "x", L("task", "b")).Inc()
	r.Counter("m_total", "x", L("task", "a")).Inc()
	got := expose(t, r)
	ia := strings.Index(got, `task="a"`)
	ib := strings.Index(got, `task="b"`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("series not sorted by label value:\n%s", got)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "Hits.").Add(2)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentType)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 2\n") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}

	// A nil registry still serves a valid (empty) exposition.
	rec = httptest.NewRecorder()
	(*Registry)(nil).Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Fatalf("nil registry: code=%d body=%q", rec.Code, rec.Body.String())
	}
}

// TestConcurrentScrapeWhileRecording scrapes the registry continuously
// while goroutines hammer a histogram and register new series, and
// asserts every scrape is internally consistent: cumulative buckets
// monotone, _count equal to the +Inf bucket. Run under -race in CI this
// is the scrape-vs-record soundness proof.
func TestConcurrentScrapeWhileRecording(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("busy_seconds", "x", []float64{1, 2, 3})

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; !stop.Load(); j++ {
				h.Observe(float64((seed + j) % 5))
				if j%100 == 0 {
					r.Counter("churn_total", "x", L("i", strconv.Itoa(j%7))).Inc()
				}
			}
		}(i)
	}

	for scrape := 0; scrape < 50; scrape++ {
		out := expose(t, r)
		var prev uint64
		var infCount, sampleCount uint64
		for _, line := range strings.Split(out, "\n") {
			switch {
			case strings.HasPrefix(line, "busy_seconds_bucket"):
				v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
				if err != nil {
					t.Fatalf("bad bucket line %q: %v", line, err)
				}
				if v < prev {
					t.Fatalf("bucket counts not monotone in scrape:\n%s", out)
				}
				prev = v
				if strings.Contains(line, `le="+Inf"`) {
					infCount = v
				}
			case strings.HasPrefix(line, "busy_seconds_count"):
				sampleCount, _ = strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			}
		}
		if sampleCount != infCount {
			t.Fatalf("_count %d != +Inf bucket %d:\n%s", sampleCount, infCount, out)
		}
	}
	stop.Store(true)
	wg.Wait()
}

func TestDecodeSeriesKeyRoundTrip(t *testing.T) {
	labels := []Label{L("a", ""), L("b", `x:y,z`), L("c", "plain")}
	got := decodeSeriesKey(seriesKey(labels))
	want := []string{"", "x:y,z", "plain"}
	if len(got) != len(want) {
		t.Fatalf("decoded %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
