// Package telemetry is the framework's operational metrics layer: a
// dependency-free registry of atomic counters, gauges and fixed-bucket
// histograms, plus a Prometheus text-exposition writer (expose.go) the
// HTTP layer serves at GET /v1/metrics on both leader and follower
// roles. It is deliberately NOT internal/metrics — that package is the
// paper's ML evaluation (error curves, figure regeneration); this one
// answers the operator's questions (checkin rates, fsync latency,
// replica lag), never the researcher's.
//
// Design constraints, in order:
//
//   - Lock-free hot path. Recording a sample is a handful of atomic adds
//     with zero allocation — cheap enough to sit inside Checkout (a
//     ~µs lock-free path serving a million-device portal) without
//     moving its benchmark. Registration (Counter/Gauge/Histogram) may
//     lock; it happens at task creation, not per request.
//   - Nil-safety end to end. A nil *Registry hands out nil handles, and
//     every handle method no-ops on a nil receiver, so instrumented code
//     never guards call sites — a deployment started with -metrics=false
//     simply threads nil through and pays one predictable branch.
//   - Stable exposition. Families and series are emitted in sorted
//     order with escaped labels and construction-monotone histogram
//     buckets, so scrapes diff cleanly and internal/tools/promlint can
//     enforce the format in CI.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value pair attached to a metric series. Label names
// share the metric-name charset; values are arbitrary UTF-8 (escaped at
// exposition).
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// DurationBuckets are the default histogram bounds (in seconds) for
// request/IO latencies: 1µs to 5s in a 1–5 ladder, wide enough to span
// a lock-free checkout (~µs) and a spinning-disk fsync (~10ms) on one
// axis.
var DurationBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5,
}

// BatchBuckets are the default histogram bounds for batch sizes:
// powers of two through the hard queue ceiling's practical range.
var BatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// metric kinds.
const (
	kindCounter = iota
	kindGauge
	kindHistogram
)

func kindName(k int) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing uint64. The zero value is
// usable standalone; registry-issued counters are shared per (name,
// labels) series.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down (stored as atomic bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (CAS loop). No-op on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge reading (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is ≥ the value, with an implicit +Inf
// overflow bucket. Recording is lock-free (a linear probe over the
// bounds plus two atomic adds); bucket counts are stored per bucket,
// not cumulatively, so concurrent scrapes always expose
// construction-monotone cumulative counts and a _count that equals the
// +Inf bucket by definition.
type Histogram struct {
	bounds  []float64 // sorted ascending; +Inf is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// newHistogram validates and copies the bounds.
func newHistogram(name string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket bound", name))
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	for i, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("telemetry: histogram %q: bucket bound %v is not finite (+Inf is implicit)", name, b))
		}
		if i > 0 && b <= bs[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q: bucket bounds must be strictly increasing", name))
		}
	}
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample. No-op on a nil receiver; NaN samples are
// dropped (they would poison the sum without landing in any bucket).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the latency
// shorthand the instrumented hot paths use. No-op on a nil receiver.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// family is one named metric with its declared kind and label schema;
// its series are the concrete (label values → handle) instances.
type family struct {
	name       string
	help       string
	kind       int
	labelNames []string
	bounds     []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // seriesKey → *Counter | *Gauge | *Histogram
}

// Registry is a namespace of metric families. The zero value is not
// usable; construct with NewRegistry. A nil *Registry is a valid
// "telemetry disabled" registry: every constructor returns a nil handle
// whose methods no-op.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName reports whether s matches the Prometheus metric/label name
// charset [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally exclude ':',
// checked by the caller).
func validName(s string, allowColon bool) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c == ':' && allowColon:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// seriesKey builds the map key for one label-value combination. Values
// are length-prefixed so ("a","bc") never collides with ("ab","c").
func seriesKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		fmt.Fprintf(&b, "%d:%s,", len(l.Value), l.Value)
	}
	return b.String()
}

// lookup returns (creating if needed) the family and the series handle
// for the given schema, enforcing that a name is only ever registered
// with one kind, help string, label schema and bucket layout — a
// conflicting re-registration is a programming error and panics with
// the offending name.
func (r *Registry) lookup(name, help string, kind int, bounds []float64, labels []Label) any {
	if !validName(name, true) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Name, false) {
			panic(fmt.Sprintf("telemetry: metric %q: invalid label name %q", name, l.Name))
		}
	}
	labelNames := make([]string, len(labels))
	for i, l := range labels {
		labelNames[i] = l.Name
	}
	r.mu.Lock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind,
			labelNames: labelNames, bounds: bounds,
			series: make(map[string]any),
		}
		r.families[name] = f
	}
	r.mu.Unlock()
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)",
			name, kindName(kind), kindName(f.kind)))
	}
	if len(f.labelNames) != len(labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q re-registered with %d labels (was %d)",
			name, len(labelNames), len(f.labelNames)))
	}
	for i := range labelNames {
		if f.labelNames[i] != labelNames[i] {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with label %q (was %q)",
				name, labelNames[i], f.labelNames[i]))
		}
	}

	key := seriesKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	var m any
	switch kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	default:
		m = newHistogram(name, bounds)
	}
	f.series[key] = m
	return m
}

// Counter returns the counter series for (name, labels), registering
// the family on first use. The same (name, labels) always yields the
// same handle; re-registering a name with a different kind or label
// schema panics. A nil registry returns a nil (no-op) handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, labels).(*Counter)
}

// Gauge returns the gauge series for (name, labels); semantics as for
// Counter. A nil registry returns a nil (no-op) handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, labels).(*Gauge)
}

// Histogram returns the fixed-bucket histogram series for (name,
// labels) with the given upper bounds (+Inf is implicit; bounds must be
// finite and strictly increasing, and every series of one family shares
// the first registration's bounds). A nil registry returns a nil
// (no-op) handle.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, bounds, labels).(*Histogram)
}

// snapshotFamilies returns the families sorted by name, each with its
// series keys sorted — the stable iteration order the exposition writer
// emits.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
