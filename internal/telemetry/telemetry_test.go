package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
	// Same (name, labels) must return the same handle.
	if again := r.Counter("requests_total", "Requests."); again != c {
		t.Fatalf("re-lookup returned a different handle")
	}
	// Different label values are distinct series.
	a := r.Counter("by_task_total", "x", L("task", "a"))
	b := r.Counter("by_task_total", "x", L("task", "b"))
	if a == b {
		t.Fatalf("distinct label values shared a handle")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Fatalf("series b polluted by series a")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("lag", "Lag.")
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("Value() = %v, want 2.25", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("Value() = %v, want -7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count() = %d, want 5", got)
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+5+100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum() = %v, want %v", got, want)
	}
	// Bucket placement: ≤0.1 gets 0.05 and 0.1; ≤1 adds 0.5; ≤10 adds 5;
	// +Inf adds 100.
	wantCounts := []uint64{2, 1, 1, 1}
	for i, want := range wantCounts {
		if got := h.counts[i].Load(); got != want {
			t.Fatalf("bucket[%d] = %d, want %d", i, got, want)
		}
	}
	// NaN observations are dropped entirely.
	h.Observe(math.NaN())
	if got := h.Count(); got != 5 {
		t.Fatalf("Count() after NaN = %d, want 5", got)
	}
}

func TestHistogramObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", DurationBuckets)
	h.ObserveSince(time.Now().Add(-10 * time.Millisecond))
	if h.Count() != 1 {
		t.Fatalf("Count() = %d, want 1", h.Count())
	}
	if h.Sum() < 0.009 || h.Sum() > 5 {
		t.Fatalf("Sum() = %v, want roughly 0.01s", h.Sum())
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	g := r.Gauge("x", "x")
	h := r.Histogram("x_seconds", "x", DurationBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil handles")
	}
	// Every method must be a safe no-op on nil receivers.
	c.Inc()
	c.Add(10)
	_ = c.Value()
	g.Set(1)
	g.Add(1)
	_ = g.Value()
	h.Observe(1)
	h.ObserveSince(time.Now())
	_ = h.Count()
	_ = h.Sum()
	if err := r.WritePrometheus(&failWriter{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write failed" }

func TestConflictingRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"kind mismatch", func(r *Registry) {
			r.Counter("m", "x")
			r.Gauge("m", "x")
		}},
		{"label count mismatch", func(r *Registry) {
			r.Counter("m", "x", L("a", "1"))
			r.Counter("m", "x")
		}},
		{"label name mismatch", func(r *Registry) {
			r.Counter("m", "x", L("a", "1"))
			r.Counter("m", "x", L("b", "1"))
		}},
		{"invalid metric name", func(r *Registry) {
			r.Counter("bad name", "x")
		}},
		{"invalid label name", func(r *Registry) {
			r.Counter("m", "x", L("bad-label", "1"))
		}},
		{"empty histogram bounds", func(r *Registry) {
			r.Histogram("h", "x", nil)
		}},
		{"unsorted histogram bounds", func(r *Registry) {
			r.Histogram("h", "x", []float64{2, 1})
		}},
		{"non-finite histogram bound", func(r *Registry) {
			r.Histogram("h", "x", []float64{1, math.Inf(1)})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestSeriesKeyNoCollision(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "x", L("a", "1"), L("b", "23"))
	b := r.Counter("m", "x", L("a", "12"), L("b", "3"))
	if a == b {
		t.Fatalf("adjacent label values collided in the series key")
	}
}

// TestConcurrentRecording hammers one counter, one gauge, and one
// histogram from many goroutines and checks the totals — run under
// -race in CI this also proves the hot path is data-race-free.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "x")
	g := r.Gauge("g", "x")
	h := r.Histogram("h", "x", []float64{1, 2, 3})

	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 5))
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != goroutines*perG {
		t.Fatalf("gauge = %v, want %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	wantSum := float64(goroutines) * perG / 5 * (0 + 1 + 2 + 3 + 4)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", got, wantSum)
	}
}
