package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// escapeHelp escapes a HELP string per the Prometheus text format:
// backslash and newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value: backslash, double-quote, and
// newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trippable decimal, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// labelPairs renders {a="x",b="y"} from parallel name/value slices; the
// extra pair (used for histogram le) is appended last when its name is
// non-empty. Returns "" when there are no pairs at all.
func labelPairs(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// decodeSeriesKey recovers the label values from a series map key (the
// inverse of seriesKey's length-prefixed encoding).
func decodeSeriesKey(key string) []string {
	if key == "" {
		return nil
	}
	var out []string
	for len(key) > 0 {
		colon := strings.IndexByte(key, ':')
		n, _ := strconv.Atoi(key[:colon])
		out = append(out, key[colon+1:colon+1+n])
		key = key[colon+1+n+1:] // skip value and trailing comma
	}
	return out
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): families sorted by name, one
// # HELP and # TYPE line each, then the series sorted by label values.
// Histogram families expand into cumulative _bucket series (ending in
// le="+Inf"), _sum, and _count; because per-bucket counts are summed at
// scrape time, the cumulative sequence is monotone and _count equals
// the +Inf bucket even while other goroutines are recording. A nil
// registry writes nothing. The first write error aborts the walk and is
// returned.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		series := make([]any, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		f.mu.Unlock()
		if len(series) == 0 {
			continue
		}

		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, kindName(f.kind))
		for i, k := range keys {
			values := decodeSeriesKey(k)
			switch m := series[i].(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name,
					labelPairs(f.labelNames, values, "", ""), m.Value())
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name,
					labelPairs(f.labelNames, values, "", ""), formatValue(m.Value()))
			case *Histogram:
				var cum uint64
				for bi := range m.counts {
					cum += m.counts[bi].Load()
					le := "+Inf"
					if bi < len(m.bounds) {
						le = formatValue(m.bounds[bi])
					}
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
						labelPairs(f.labelNames, values, "le", le), cum)
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name,
					labelPairs(f.labelNames, values, "", ""), formatValue(m.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name,
					labelPairs(f.labelNames, values, "", ""), cum)
			}
		}
	}
	return bw.Flush()
}

// ContentType is the Content-Type of the Prometheus text exposition
// format emitted by WritePrometheus.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler that serves the registry in
// Prometheus text format. A nil registry serves an empty (valid)
// exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}
