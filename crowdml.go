package crowdml

import (
	"context"
	"net/http"
	"time"

	"github.com/crowdml/crowdml/internal/core"
	"github.com/crowdml/crowdml/internal/hub"
	"github.com/crowdml/crowdml/internal/model"
	"github.com/crowdml/crowdml/internal/optimizer"
	"github.com/crowdml/crowdml/internal/portal"
	"github.com/crowdml/crowdml/internal/privacy"
	"github.com/crowdml/crowdml/internal/replica"
	"github.com/crowdml/crowdml/internal/shard"
	"github.com/crowdml/crowdml/internal/store"
	"github.com/crowdml/crowdml/internal/telemetry"
	"github.com/crowdml/crowdml/internal/transport"
)

// Sample is one (feature vector, target) pair. Classification models read
// Y; the ridge regressor reads T. For the differential-privacy guarantees
// to hold, features must satisfy ‖X‖₁ ≤ 1 (normalize with NormalizeL1).
type Sample = model.Sample

// Model is a learnable classifier or predictor; see NewLogisticRegression,
// NewLinearSVM and NewRidgeRegression.
type Model = model.Model

// NewLogisticRegression returns the paper's Table I model: C-class
// logistic regression over D-dimensional features, gradient sensitivity 4.
func NewLogisticRegression(classes, dim int) Model {
	return model.NewLogisticRegression(classes, dim)
}

// NewLinearSVM returns a C-class linear SVM with the Crammer–Singer hinge
// subgradient (sensitivity 4).
func NewLinearSVM(classes, dim int) Model {
	return model.NewLinearSVM(classes, dim)
}

// NewRidgeRegression returns a D-dimensional linear regressor whose
// gradient residual is clipped to ±residualClip (sensitivity
// 2·residualClip); errTolerance defines its misclassification indicator.
func NewRidgeRegression(dim int, residualClip, errTolerance float64) Model {
	return model.NewRidgeRegression(dim, residualClip, errTolerance)
}

// Eps is a differential-privacy level ε; the zero value disables noise
// (the paper's ε⁻¹ = 0 setting).
type Eps = privacy.Eps

// FromInv converts the paper's ε⁻¹ parametrization into an Eps
// (FromInv(0.1) is ε = 10; FromInv(0) disables privacy).
func FromInv(inv float64) Eps { return privacy.FromInv(inv) }

// Budget is the per-device privacy budget: ε_g for gradients, ε_e for the
// error count, ε_yk for each label count; the composed level is
// ε = ε_g + ε_e + C·ε_yk.
type Budget = privacy.Budget

// Schedule maps server iteration t to the learning rate η(t).
type Schedule = optimizer.Schedule

// InvSqrt is the paper's default schedule η(t) = c/√t (Eq. 5).
type InvSqrt = optimizer.InvSqrt

// Constant is a fixed learning rate.
type Constant = optimizer.Constant

// InvT is the η(t) = c/t schedule for strongly convex risks.
type InvT = optimizer.InvT

// Updater applies one server-side parameter update (Eq. 3).
type Updater = optimizer.Updater

// NewSGD returns the projected-SGD updater of Eq. (3); radius ≤ 0 disables
// the projection Π_W.
func NewSGD(schedule Schedule, radius float64) Updater {
	return &optimizer.SGD{Schedule: schedule, Radius: radius}
}

// NewAdaGrad returns the adaptive per-coordinate updater of Remark 3
// (robust to outlier gradients from malignant devices). AdaGrad
// implements StateExporter, so a durable task using it recovers
// bit-exactly: its accumulators ride in every checkpoint.
func NewAdaGrad(eta, radius float64) Updater {
	return &optimizer.AdaGrad{Eta: eta, Radius: radius}
}

// StateExporter is optionally implemented by Updaters carrying internal
// state beyond the parameter vector (AdaGrad's per-coordinate
// accumulators, Momentum's velocity). The exported vector rides inside
// checkpoints (ServerState.UpdaterState) and is handed back on restore,
// making recovery bit-exact for stateful updaters too — a custom
// Updater that wants exact recovery should implement it.
type StateExporter = optimizer.StateExporter

// Server is the Crowd-ML server (Algorithm 2). Safe for concurrent use
// and built for read-mostly traffic: checkouts and statistics are served
// lock-free from an immutable parameter snapshot and atomic counters,
// while concurrent checkins are applied in groups by a batch leader under
// a single lock acquisition (see ServerConfig's CheckinBatchSize,
// CheckinQueueDepth and CheckinFlushInterval).
type Server = core.Server

// ServerConfig configures a Server. Note the OnCheckin concurrency
// contract: hooks run outside the server's parameter lock, sequentially
// in iteration order.
type ServerConfig = core.ServerConfig

// NewServer constructs a standalone server. Most deployments should
// instead host tasks on a Hub (NewHub + Hub.CreateTask), which is what
// the HTTP layer serves.
func NewServer(cfg ServerConfig) (*Server, error) { return core.NewServer(cfg) }

// Hub hosts many named learning tasks in one process — the paper's
// multi-task Web portal design (Section V-A). Its task registry is
// sharded so concurrent checkins to different tasks never contend on a
// single mutex.
type Hub = hub.Hub

// Task is one learning task hosted on a Hub: a Server plus its portal
// metadata. Obtain with Hub.CreateTask or Hub.Task.
type Task = hub.Task

// TaskOption customizes Hub.CreateTask; see WithTaskInfo and
// AsDefaultTask.
type TaskOption = hub.TaskOption

// NewHub returns an empty task hub.
func NewHub() *Hub { return hub.New() }

// OpenHub reconstructs a hub from persisted state after a restart: every
// task ID listed under root is re-created via configure (which supplies
// what a Store cannot hold — the model, updater and portal metadata, or
// ErrSkipTask to leave a task unopened), restored to its exact pre-crash
// iteration, parameters and totals (latest checkpoint + journal-tail
// replay), and resumes journaling and checkpointing. Shut the hub down
// with Hub.Close, which flushes a final snapshot per task.
func OpenHub(ctx context.Context, root StoreRoot, configure TaskConfig) (*Hub, error) {
	h := hub.New()
	if _, err := h.Restore(ctx, root, configure); err != nil {
		// Tasks restored before the failure have open journals; flush them
		// so a half-failed open never strands file handles. The cleanup
		// gets its own short deadline (detached from the possibly-dead
		// ctx) so a wedged store cannot hang OpenHub's error return.
		cleanupCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 10*time.Second)
		defer cancel()
		_ = h.Close(cleanupCtx)
		return nil, err
	}
	return h, nil
}

// TaskConfig supplies the runtime configuration for a persisted task
// being restored by OpenHub or Hub.Restore.
type TaskConfig = hub.TaskConfig

// CheckpointPolicy controls a durable task's asynchronous checkpoint
// cadence (WithCheckpointPolicy): Every snapshots on a timer, AfterN
// after that many checkins since the last snapshot; both coalesce. The
// zero policy defaults to once a minute. Checkpoints only bound journal
// replay time — the write-ahead journal alone already makes every
// acknowledged checkin durable.
type CheckpointPolicy = hub.CheckpointPolicy

// WithTaskInfo attaches portal metadata to a task at creation.
func WithTaskInfo(info TaskInfo) TaskOption { return hub.WithInfo(info) }

// AsDefaultTask makes the created task the target of the legacy
// single-task /v1/* endpoints (by default, the first task created).
func AsDefaultTask() TaskOption { return hub.AsDefault() }

// WithStore makes the task durable on st: persisted state is restored
// before the task goes live, every applied checkin is journaled ahead of
// its acknowledgment, and an asynchronous coalescing checkpointer
// snapshots the state per WithCheckpointPolicy — all off the lock-free
// hot path. Flush with Hub.Close or Hub.CloseTask.
func WithStore(st Store) TaskOption { return hub.WithStore(st) }

// WithCheckpointPolicy sets a durable task's checkpoint cadence (only
// meaningful together with WithStore). Each successful checkpoint also
// rotates the journal onto a fresh segment, so the cadence bounds both
// replay time and how much journal a restart must read.
func WithCheckpointPolicy(p CheckpointPolicy) TaskOption { return hub.WithCheckpointPolicy(p) }

// SyncPolicy selects how hard a durable task's journal pushes entries
// toward stable storage: SyncNone (flushed to the OS, process-crash
// durability — the default), SyncBatch (group-commit fsync: the batch
// leader fsyncs once per applied batch before any of its
// acknowledgments, buying power-loss durability at amortized cost), or
// SyncEvery (fsync per append).
type SyncPolicy = hub.SyncPolicy

// SyncPolicy values; see the SyncPolicy docs and docs/OPERATIONS.md for
// the durability/throughput trade.
const (
	SyncNone  = hub.SyncNone
	SyncBatch = hub.SyncBatch
	SyncEvery = hub.SyncEvery
)

// WithSyncPolicy sets a durable task's journal fsync policy (only
// meaningful together with WithStore). The zero policy is SyncNone.
func WithSyncPolicy(p SyncPolicy) TaskOption { return hub.WithSyncPolicy(p) }

// Task-registry and restore sentinel errors.
var (
	ErrTaskExists   = hub.ErrTaskExists
	ErrTaskNotFound = hub.ErrTaskNotFound
	ErrBadTaskID    = hub.ErrBadTaskID
	ErrSkipTask     = hub.ErrSkipTask
)

// ValidTaskID reports whether id is usable as a task ID (the charset
// Hub.CreateTask enforces) — useful for validating external input before
// doing side-effectful work keyed on the ID.
func ValidTaskID(id string) bool { return hub.ValidTaskID(id) }

// Device is a Crowd-ML device (Algorithm 1). Not safe for concurrent use.
type Device = core.Device

// DeviceConfig configures a Device.
type DeviceConfig = core.DeviceConfig

// NewDevice constructs a device.
func NewDevice(cfg DeviceConfig) (*Device, error) { return core.NewDevice(cfg) }

// SampleSource yields a device's local sample stream for Device.Run;
// io.EOF ends the stream cleanly.
type SampleSource = core.SampleSource

// Transport connects devices to a server.
type Transport = core.Transport

// CheckoutResponse and CheckinRequest are the framework's wire messages.
type (
	CheckoutResponse = core.CheckoutResponse
	CheckinRequest   = core.CheckinRequest
)

// Sentinel errors returned by Server and Device methods.
var (
	ErrAuth       = core.ErrAuth
	ErrStopped    = core.ErrStopped
	ErrBadCheckin = core.ErrBadCheckin
	ErrBufferFull = core.ErrBufferFull
)

// NewLoopback returns an in-process Transport wrapping the server.
func NewLoopback(s *Server) Transport { return transport.NewLoopback(s) }

// HTTPClient is the device-side HTTP transport. A fresh client targets
// the server's default task via the legacy /v1/* paths; bind it to a
// named task with WithTask. All its methods honor context cancellation
// and deadlines.
type HTTPClient = transport.HTTPClient

// NewHTTPClient returns a Transport speaking to baseURL over HTTP
// (nil client = 30 s timeout default). Its Register method enrolls via
// the server's enrollment endpoint; WithTask binds it to one task's
// /v1/tasks/{id}/ routes.
func NewHTTPClient(baseURL string, client *http.Client) *HTTPClient {
	return transport.NewHTTPClient(baseURL, client)
}

// TaskSummary is one row of the GET /v1/tasks listing.
type TaskSummary = transport.TaskSummary

// NewHTTPHandler exposes every task hosted on the hub over HTTP:
// task-scoped routes /v1/tasks/{id}/{checkout,checkin,stats} plus a
// /v1/tasks listing, with the legacy /v1/checkout, /v1/checkin and
// /v1/stats paths aliased to the hub's default task. If enrollKey is
// non-empty, /v1/register and /v1/tasks/{id}/register are enabled so
// devices holding the key can self-enroll.
func NewHTTPHandler(h *Hub, enrollKey string) http.Handler {
	hd := transport.NewHandler(h)
	hd.EnableEnrollment(enrollKey)
	return hd
}

// NewHTTPHandlerWithMetrics is NewHTTPHandler plus operational
// telemetry: GET /v1/metrics serves reg's Prometheus text exposition
// (on leaders and followers alike), and every request through the
// handler is counted by matched route pattern and status class. Pass
// the same registry to WithMetrics / ReplicaConfig.Metrics so the
// core, durability and replica series surface on the same endpoint.
// A nil registry serves an empty exposition and skips request counting.
func NewHTTPHandlerWithMetrics(h *Hub, enrollKey string, reg *MetricsRegistry) http.Handler {
	hd := transport.NewHandler(h)
	hd.EnableEnrollment(enrollKey)
	hd.EnableMetrics(reg)
	return hd
}

// MetricsRegistry is the operational telemetry registry: a namespace of
// atomic counters, gauges and fixed-bucket histograms with lock-free
// recording and a Prometheus text-exposition writer. Distinct from the
// paper's ML-evaluation metrics (internal/metrics): this one answers
// operator questions — checkin rates, fsync latency, replica lag. A nil
// *MetricsRegistry is valid everywhere one is accepted and disables
// telemetry.
type MetricsRegistry = telemetry.Registry

// NewMetricsRegistry returns an empty operational telemetry registry.
// Wire it into the HTTP layer with NewHTTPHandlerWithMetrics, into
// tasks with WithMetrics, and into followers via
// ReplicaConfig.Metrics; see docs/OPERATIONS.md "Monitoring" for the
// metric name table.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// WithMetrics instruments the created task in reg: the core hot-path
// series (checkouts, checkins, latency histograms, batch sizes,
// rejections) and — together with WithStore — the durability series
// (journal appends, fsync latency, checkpoint saves, rotations,
// retention prunes, fail-stops, live segment gauge), all labeled with
// the task ID. Recording is lock-free atomic adds on pre-bound handles;
// the benchgate-enforced contract is that instrumentation keeps the
// checkout/checkin hot paths within the regression envelope.
func WithMetrics(reg *MetricsRegistry) TaskOption { return hub.WithMetrics(reg) }

// ServerMetrics is the pre-bound handle set a standalone Server (one
// built with NewServer rather than hosted on a hub) records into via
// ServerConfig.Metrics. Hub-hosted tasks should use WithMetrics, which
// binds this automatically under the task's ID.
type ServerMetrics = core.ServerMetrics

// NewServerMetrics binds the core-layer series for one task name in
// reg; nil reg yields nil (telemetry disabled).
func NewServerMetrics(reg *MetricsRegistry, task string) *ServerMetrics {
	return core.NewServerMetrics(reg, task)
}

// NormalizeL1 scales x in place to unit L1 norm — the feature
// normalization required by the privacy analysis (Theorem 1 assumes
// ‖x‖₁ ≤ 1).
func NormalizeL1(x []float64) {
	var n float64
	for _, v := range x {
		if v < 0 {
			n -= v
		} else {
			n += v
		}
	}
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}

// ServerState is a serializable snapshot of the server's learning state
// (parameters, iteration counter, per-device progress counters); see
// Server.ExportState and Server.ImportState. Device credentials are never
// part of the state.
type ServerState = core.ServerState

// ReplayRecord is one journaled, previously-acknowledged checkin for
// Server.Replay — the low-level recovery entry point WithStore-managed
// restore is built on (most callers never touch it directly).
type ReplayRecord = core.ReplayRecord

// ReplaySource streams replay records into Server.Replay, one at a
// time (io.EOF ends the stream) — recovery memory stays O(one entry)
// however long the journal tail is. The hub's restore path adapts a
// JournalCursor into one; ReplaySlice adapts a materialized slice.
type ReplaySource = core.ReplaySource

// ReplaySlice adapts an in-memory record slice to a ReplaySource, for
// embedders that already hold the records (the v3 Replay signature).
func ReplaySlice(records []ReplayRecord) ReplaySource { return core.ReplaySlice(records) }

// ErrReplayGap is returned by Server.Replay when the journal tail skips
// an iteration — replaying past a gap would silently diverge from the
// pre-crash state.
var ErrReplayGap = core.ErrReplayGap

// TaskInfo describes a crowd-learning task for the Web portal: objective,
// sensory data, labels, algorithm, and privacy budget — the transparency
// details of the paper's Section V-A portal.
type TaskInfo = hub.TaskInfo

// NewPortal returns an http.Handler serving one task's public page with
// differentially private live statistics (error rate, label distribution).
func NewPortal(s *Server, info TaskInfo) http.Handler {
	return portal.New(s, info)
}

// NewPortalIndex returns the multi-task Web portal for a hub: "/" lists
// every hosted task and "tasks/{id}" serves each task's transparency
// page — the paper's portal where devices browse crowd-learning tasks
// before joining one.
func NewPortalIndex(h *Hub) http.Handler {
	return portal.NewIndex(h)
}

// Store is the pluggable durability backend for one task's learning
// state: atomic checkpoints (Save/Load) plus a write-ahead checkin
// journal (OpenJournal to append, OpenCursor to stream it back) — the
// role MySQL played in the paper's prototype. Attach one to a task with
// WithStore; recovery is load-latest-checkpoint + deterministic
// streaming replay of the journal tail.
type Store = store.Store

// FileStore is the file-backed Store: JSON checkpoints (atomic
// write-to-temp + rename) and a segmented JSONL journal
// (journal-*.jsonl; sealed segments are the audit trail) under one
// directory, guarded by an advisory flock so a second process cannot
// open a live journal (ErrStoreLocked).
type FileStore = store.FileStore

// NewFileStore opens (creating if needed) a store directory.
func NewFileStore(dir string) (*FileStore, error) { return store.NewFileStore(dir) }

// MemStore is the in-memory Store, for tests, benchmarks and embedded
// use; a "crash" is simulated by dropping the hub while keeping the
// store.
type MemStore = store.MemStore

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return store.NewMemStore() }

// StoreRoot is a namespace of per-task Stores — what OpenHub restores a
// whole process from. NewFileRoot exposes a directory of per-task
// subdirectories (the cmd/crowdml-server -state-dir layout); NewMemRoot
// is its in-memory counterpart.
type StoreRoot = store.Root

// NewFileRoot opens (creating if needed) a root directory of per-task
// stores.
func NewFileRoot(dir string) (*store.FileRoot, error) { return store.NewFileRoot(dir) }

// NewMemRoot returns an empty in-memory root of per-task stores.
func NewMemRoot() *store.MemRoot { return store.NewMemRoot() }

// Store-layer sentinel errors. ErrNoCheckpoint is returned by Store.Load
// when nothing has been saved yet; ErrJournalTruncated is returned by
// JournalCursor.Next in io.EOF's place when the journal's final record
// is torn (the expected artifact of a crash mid-append — every valid
// entry has been yielded, so recovery treats it as a clean end of
// stream); ErrStoreLocked is returned by FileStore.OpenJournal when
// another live journal holds the store directory's advisory lock.
var (
	ErrNoCheckpoint     = store.ErrNoCheckpoint
	ErrJournalTruncated = store.ErrJournalTruncated
	ErrStoreLocked      = store.ErrStoreLocked
)

// Journal is a task's append-only, segmented write-ahead checkin log,
// opened with Store.OpenJournal. Entries are durable before Append
// returns; Rotate seals the live segment (the hub's checkpointer calls
// it after every successful snapshot); Sync fsyncs for power-loss
// durability (see SyncPolicy).
type Journal = store.Journal

// JournalEntry is one write-ahead record: the complete sanitized checkin
// (device, iteration, perturbed gradient, counters, echoed checkout
// version), enough to deterministically re-apply it during recovery.
type JournalEntry = store.JournalEntry

// JournalCursor streams journal entries one at a time, opened with
// Store.OpenCursor(ctx, afterIteration): Next yields entries in append
// order and returns io.EOF at the clean end of the stream — or
// ErrJournalTruncated in its place when the live segment ends in a
// crash-torn record (every valid entry has been yielded by then). An
// audit scan (OpenCursor with afterIteration 0) or a restore holds one
// decoded entry resident at a time, however large the journal is.
type JournalCursor = store.JournalCursor

// SegmentInfo describes one journal segment (FileStore.Segments): its
// file name, chain sequence number, and whether a rotation has sealed
// it. The newest segment is live (Sealed == false) — including a legacy
// pre-segmentation checkins.jsonl until the first rotation seals it —
// and retention never touches a live segment.
type SegmentInfo = store.SegmentInfo

// RetentionPolicy decides what happens to sealed journal segments the
// latest checkpoint fully covers (WithRetention): KeepAll (default)
// retains everything as the audit trail, PruneCovered deletes covered
// segments, ArchiveCovered(dir) moves them to dir as plain JSONL. The
// checkpointer applies the policy only after a successful
// checkpoint-and-rotate cycle, never to the live segment and never to a
// segment the checkpoint does not cover — no policy can cost an
// acknowledged checkin.
type RetentionPolicy = hub.RetentionPolicy

// Retention policies; see RetentionPolicy and docs/OPERATIONS.md.
var (
	KeepAll      = hub.KeepAll
	PruneCovered = hub.PruneCovered
)

// ArchiveCovered returns the retention policy that moves covered sealed
// segments into dir (created if needed) instead of deleting them.
func ArchiveCovered(dir string) RetentionPolicy { return hub.ArchiveCovered(dir) }

// WithRetention sets a durable task's segment retention policy (only
// meaningful together with WithStore; any policy other than KeepAll
// requires a store implementing store.SegmentRetainer — both shipped
// stores do). The zero policy is KeepAll.
func WithRetention(p RetentionPolicy) TaskOption { return hub.WithRetention(p) }

// AsReplicaOf marks a task created on this hub as a read-only follower
// replica of the same task ID on the leader at leaderURL: its state is
// maintained solely by a Replicator tailing the leader's journal feed,
// reads (checkout, stats) are served locally, and the HTTP layer rejects
// writes with 409 plus an X-Crowdml-Leader hint. Incompatible with
// WithStore — a follower that dies re-bootstraps from the leader.
func AsReplicaOf(leaderURL string) TaskOption { return hub.AsReplicaOf(leaderURL) }

// ReplicaStatus is a follower task's replication telemetry (state,
// leader URL, leader iteration, last error), surfaced per task on the
// GET /v1/healthz endpoint and via Task.ReplicaStatus.
type ReplicaStatus = hub.ReplicaStatus

// Replica states reported in ReplicaStatus.State.
const (
	ReplicaBootstrapping = hub.ReplicaBootstrapping
	ReplicaTailing       = hub.ReplicaTailing
	ReplicaRetrying      = hub.ReplicaRetrying
	ReplicaStopped       = hub.ReplicaStopped
)

// Replicator drives one follower task: it bootstraps from the leader's
// latest checkpoint, tails the leader's journal feed, and applies each
// shipped entry through the same deterministic replay path crash
// recovery uses, keeping the replica bit-exact while it serves the read
// path. Build with NewReplicator, run with Start/Stop (or Run for
// callers managing their own goroutines).
type Replicator = replica.Replicator

// ReplicaConfig configures a Replicator: the local follower task
// (created with AsReplicaOf), a task-bound HTTPClient aimed at the
// leader, and optional poll/backoff tuning.
type ReplicaConfig = replica.Config

// NewReplicator validates the configuration and binds the replicator to
// the follower task's health probe.
func NewReplicator(cfg ReplicaConfig) (*Replicator, error) { return replica.New(cfg) }

// WireFormat selects an HTTPClient's encoding for the device hot path
// (checkout/checkin); everything else — registration, stats, the journal
// feed — always speaks JSON. Pick one with HTTPClient.WithWire, parse a
// -wire flag with ParseWireFormat.
type WireFormat = transport.WireFormat

// Wire formats. WireJSON is the default and the compatibility baseline;
// WireBinary negotiates the framed little-endian binary protocol
// (docs/WIRE.md); WireBinaryDelta additionally requests sparse deltas
// against the client's last checkout, shrinking steady-state polls to a
// few dozen bytes.
const (
	WireJSON        = transport.WireJSON
	WireBinary      = transport.WireBinary
	WireBinaryDelta = transport.WireBinaryDelta
)

// ParseWireFormat parses the -wire flag spelling: "json" (or empty),
// "binary", "binary-delta".
func ParseWireFormat(s string) (WireFormat, error) { return transport.ParseWireFormat(s) }

// RetryPolicy configures transparent capped-exponential-backoff retries
// (with full jitter) for an HTTPClient's idempotent GET requests —
// checkout, stats, task listing, checkpoint fetch, journal feed open.
// Derive a retrying client with HTTPClient.WithRetry; non-idempotent
// requests (checkin, register) are never retried.
type RetryPolicy = transport.RetryPolicy

// StatsResponse is the body of the GET stats endpoints — the
// differentially private progress view (HTTPClient.Stats).
type StatsResponse = transport.StatsResponse

// HealthResponse is the body of GET /v1/healthz: overall status plus one
// row per hosted task, including follower replication state and lag
// (HTTPClient.Healthz).
type HealthResponse = transport.HealthResponse

// HealthTask is one task's row in a HealthResponse.
type HealthTask = transport.HealthTask

// ErrReadOnlyReplica is the sentinel behind the 409 a follower answers
// writes with (the client maps that status back to ErrStopped; handlers
// embedding the transport see this sentinel).
var ErrReadOnlyReplica = transport.ErrReadOnlyReplica

// LeaderHintError is the client-side image of a 409 that carried an
// X-Crowdml-Leader hint: the write hit a read-only follower (standalone,
// or the follower member owning the device in a sharded tier) and
// Leader names the base URL to retry against. It unwraps to both
// ErrReadOnlyReplica and ErrStopped.
type LeaderHintError = transport.LeaderHintError

// LeaderHint extracts the hinted leader base URL from an error returned
// by an HTTPClient write, when the server supplied one.
func LeaderHint(err error) (string, bool) { return transport.LeaderHint(err) }

// ShardedTask is a sharded logical learning task: N member leader tasks
// (each an ordinary durable task with its own WAL/checkpoint lineage,
// hosted under "{task}.shard-{k}") behind a routing front-end. Writes —
// checkin, register — go to the member owning the device (stable FNV
// hash of the device ID); merged reads — checkout, stats — serve a
// periodically rebuilt checkin-count-weighted average of the member
// parameter vectors, published through an atomic pointer so checkouts
// stay lock-free. Devices address the logical task ID over the same
// /v1/tasks/{id}/ routes as any task. Build with NewShardedTask; it
// also implements Transport for in-process devices.
type ShardedTask = shard.Group

// ShardOption configures NewShardedTask.
type ShardOption = shard.Option

// DefaultShardMergeInterval is how often a sharded task's merger
// rebuilds the merged view unless WithShardMergeInterval overrides it.
const DefaultShardMergeInterval = shard.DefaultMergeInterval

// NewShardedTask creates the member tasks on the hub, mounts the
// routing front-end under taskID, and starts the merger. configure is
// called once per shard and must return a fresh ServerConfig each time
// (updaters are stateful). With WithShardStores, each member restores
// its own persisted lineage first — restarting a sharded deployment is
// calling NewShardedTask again with the same arguments. Shut down with
// ShardedTask.Close.
func NewShardedTask(ctx context.Context, h *Hub, taskID string, configure func(shard int) ServerConfig, opts ...ShardOption) (*ShardedTask, error) {
	return shard.New(ctx, h, taskID, configure, opts...)
}

// WithShards sets the shard count N (default 1).
func WithShards(n int) ShardOption { return shard.WithShards(n) }

// WithShardMergeInterval sets the merger cadence (default
// DefaultShardMergeInterval). Merged checkouts trail the shard tier by
// at most one cadence plus one merge.
func WithShardMergeInterval(d time.Duration) ShardOption { return shard.WithMergeInterval(d) }

// WithShardStores makes every member durable: member k journals and
// checkpoints into root's store for "{task}.shard-{k}".
func WithShardStores(root StoreRoot) ShardOption { return shard.WithStores(root) }

// WithShardInfo sets the logical task's portal metadata; members derive
// theirs from it.
func WithShardInfo(info TaskInfo) ShardOption { return shard.WithInfo(info) }

// WithShardTaskOptions appends task options applied identically to
// every member (checkpoint policy, sync policy, retention, ...).
func WithShardTaskOptions(opts ...TaskOption) ShardOption { return shard.WithTaskOptions(opts...) }

// WithShardMemberTaskOptions supplies per-member task options — for
// knobs that must differ per shard, like each member's archive
// directory.
func WithShardMemberTaskOptions(f func(shard int, memberID string) []TaskOption) ShardOption {
	return shard.WithMemberTaskOptions(f)
}

// WithShardMetrics instruments the tier into reg: the router's sharding
// series (per-shard routed requests, merge latency and staleness) plus
// every member's ordinary per-task series.
func WithShardMetrics(reg *MetricsRegistry) ShardOption { return shard.WithMetrics(reg) }

// ShardedStats is the merged progress view of a sharded task
// (ShardedTask.MergedStats): Σ-of-shards iteration, all-shards-stopped
// done flag, and estimates recomputed from summed raw counters.
type ShardedStats = hub.ShardedStats

// ShardHealth is one member's sub-row inside a sharded task's healthz
// entry (HealthTask.Shards).
type ShardHealth = transport.ShardHealth
