package crowdml_test

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"testing"

	crowdml "github.com/crowdml/crowdml"
)

// TestPublicAPIEndToEnd drives the full public surface: build a model,
// server, loopback device with privacy, stream samples, read progress.
func TestPublicAPIEndToEnd(t *testing.T) {
	m := crowdml.NewLogisticRegression(2, 4)
	server, err := crowdml.NewServer(crowdml.ServerConfig{
		Model:   m,
		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 5}, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	token, err := server.RegisterDevice(ctx, "phone-1")
	if err != nil {
		t.Fatal(err)
	}
	device, err := crowdml.NewDevice(crowdml.DeviceConfig{
		ID: "phone-1", Token: token, Model: m,
		Transport: crowdml.NewLoopback(server),
		Minibatch: 2,
		Budget:    crowdml.Budget{Gradient: crowdml.FromInv(0.01)}, // ε=100, mild
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		y := i % 2
		x := []float64{0.1, 0.1, 0.1, 0.1}
		x[y] = 1
		crowdml.NormalizeL1(x)
		if err := device.AddSample(ctx, crowdml.Sample{X: x, Y: y}); err != nil {
			t.Fatalf("AddSample %d: %v", i, err)
		}
	}
	if server.Iteration() != 100 {
		t.Errorf("iterations = %d, want 100", server.Iteration())
	}
	est, ok := server.ErrEstimate()
	if !ok {
		t.Fatal("no error estimate")
	}
	// Separable task with mild noise: online error should be modest.
	if est > 0.5 {
		t.Errorf("online error estimate = %v", est)
	}
}

func TestPublicAPIHTTPWithEnrollment(t *testing.T) {
	m := crowdml.NewLogisticRegression(2, 2)
	hub := crowdml.NewHub()
	ctx := context.Background()
	task, err := hub.CreateTask(ctx, "api-test", crowdml.ServerConfig{
		Model:   m,
		Updater: crowdml.NewSGD(crowdml.Constant{C: 0.5}, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	server := task.Server()
	ts := httptest.NewServer(crowdml.NewHTTPHandler(hub, "join-key"))
	defer ts.Close()

	client := crowdml.NewHTTPClient(ts.URL, nil)
	token, err := client.Register(ctx, "phone-2", "join-key")
	if err != nil {
		t.Fatal(err)
	}
	device, err := crowdml.NewDevice(crowdml.DeviceConfig{
		ID: "phone-2", Token: token, Model: m,
		Transport: client, Minibatch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := device.AddSample(ctx, crowdml.Sample{X: []float64{1, 0}, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if server.Iteration() != 1 {
		t.Error("HTTP device checkin did not update the server")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	m := crowdml.NewLogisticRegression(2, 2)
	server, err := crowdml.NewServer(crowdml.ServerConfig{
		Model:   m,
		Updater: crowdml.NewSGD(crowdml.Constant{C: 1}, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Checkout(context.Background(), "nobody", "tok"); !errors.Is(err, crowdml.ErrAuth) {
		t.Errorf("error = %v, want ErrAuth", err)
	}
}

func TestPublicAPIAdaGradAndModels(t *testing.T) {
	if u := crowdml.NewAdaGrad(0.1, 1); u == nil || u.Name() == "" {
		t.Error("NewAdaGrad returned unusable updater")
	}
	if m := crowdml.NewLinearSVM(3, 5); m.GradientSensitivity() != 4 {
		t.Error("SVM sensitivity")
	}
	if m := crowdml.NewRidgeRegression(4, 0.5, 0.1); m.GradientSensitivity() != 1 {
		t.Error("ridge sensitivity")
	}
}

func TestNormalizeL1(t *testing.T) {
	x := []float64{2, -2}
	crowdml.NormalizeL1(x)
	if math.Abs(x[0]-0.5) > 1e-12 || math.Abs(x[1]+0.5) > 1e-12 {
		t.Errorf("normalized = %v", x)
	}
	zero := []float64{0, 0}
	crowdml.NormalizeL1(zero)
	if zero[0] != 0 || zero[1] != 0 {
		t.Error("zero vector must be unchanged")
	}
}

func TestBudgetComposition(t *testing.T) {
	b := crowdml.Budget{
		Gradient:   crowdml.Eps(1),
		ErrCount:   crowdml.Eps(0.01),
		LabelCount: crowdml.Eps(0.001),
	}
	total := b.Total(10)
	if math.Abs(float64(total)-(1+0.01+10*0.001)) > 1e-12 {
		t.Errorf("Total = %v", total)
	}
}
