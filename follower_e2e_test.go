// End-to-end WAL-shipping replication test: a leader hub journals a live
// crowd's checkins while checkpointing and pruning aggressively, a
// follower replica tails the leader's journal feed over real HTTP, and
// the follower must (a) serve checkouts to leader-registered devices,
// (b) reject writes with a leader hint, and (c) end bit-exact with the
// leader's exported state — iteration, parameters, totals, per-device
// counters — including after a mid-tail crash that strands it behind
// leader retention, forcing a checkpoint re-bootstrap.
package crowdml_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	crowdml "github.com/crowdml/crowdml"
)

const (
	repClasses = 3
	repDim     = 4
)

func repServerConfig() crowdml.ServerConfig {
	return crowdml.ServerConfig{
		Model:   crowdml.NewLogisticRegression(repClasses, repDim),
		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 5}, 0),
	}
}

// repDrive pushes n checkout/checkin rounds through the leader's HTTP
// surface as the given device.
func repDrive(t *testing.T, client *crowdml.HTTPClient, deviceID, token string, n int) {
	t.Helper()
	ctx := context.Background()
	grad := make([]float64, repClasses*repDim)
	for i := range grad {
		grad[i] = 0.01 * float64(i%7)
	}
	for i := 0; i < n; i++ {
		co, err := client.Checkout(ctx, deviceID, token)
		if err != nil {
			t.Fatalf("leader checkout %d: %v", i, err)
		}
		err = client.Checkin(ctx, deviceID, token, &crowdml.CheckinRequest{
			Grad:        grad,
			NumSamples:  2,
			ErrCount:    1,
			LabelCounts: []int{1, 1, 0},
			Version:     co.Version,
		})
		if err != nil {
			t.Fatalf("leader checkin %d: %v", i, err)
		}
	}
}

// waitReplicaCaughtUp polls until the follower task reports zero lag at
// the leader's current iteration.
func waitReplicaCaughtUp(t *testing.T, leader *crowdml.Server, follower *crowdml.Task) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		lag, ok := follower.ReplicationLag()
		if ok && lag == 0 && follower.Server().Iteration() == leader.Iteration() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := follower.ReplicaStatus()
	t.Fatalf("follower stuck: leader at %d, follower at %d, status %+v",
		leader.Iteration(), follower.Server().Iteration(), st)
}

// waitCheckpointAt polls the leader store until its checkpoint covers the
// given iteration (the checkpointer runs asynchronously).
func waitCheckpointAt(t *testing.T, st *crowdml.MemStore, iteration int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		cp, err := st.Load(context.Background())
		if err == nil && cp.State.Iteration >= iteration {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("leader never checkpointed through iteration %d", iteration)
}

func TestFollowerReplicationEndToEnd(t *testing.T) {
	ctx := context.Background()

	// Leader: checkpoint every 5 checkins, prune covered segments — so a
	// sustained workload cycles checkpoint+prune continuously and a
	// disconnected follower is guaranteed to fall behind retention.
	leaderStore := crowdml.NewMemStore()
	leaderHub := crowdml.NewHub()
	leaderTask, err := leaderHub.CreateTask(ctx, "activity", repServerConfig(),
		crowdml.WithStore(leaderStore),
		crowdml.WithCheckpointPolicy(crowdml.CheckpointPolicy{AfterN: 5}),
		crowdml.WithRetention(crowdml.PruneCovered))
	if err != nil {
		t.Fatal(err)
	}
	defer leaderHub.Close(ctx)
	leader := leaderTask.Server()
	leaderSrv := httptest.NewServer(crowdml.NewHTTPHandler(leaderHub, ""))
	defer leaderSrv.Close()
	leaderClient := crowdml.NewHTTPClient(leaderSrv.URL, nil).WithTask("activity")

	token, err := leader.RegisterDevice(ctx, "phone-1")
	if err != nil {
		t.Fatal(err)
	}

	// Follower: a replica task on its own hub, vouching unknown device
	// credentials against the leader, driven by a Replicator.
	feed := leaderClient.WithRetry(crowdml.RetryPolicy{
		MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond,
	})
	followerCfg := repServerConfig()
	followerCfg.AuthFallback = feed.AuthProbe
	followerHub := crowdml.NewHub()
	followerTask, err := followerHub.CreateTask(ctx, "activity", followerCfg,
		crowdml.AsReplicaOf(leaderSrv.URL))
	if err != nil {
		t.Fatal(err)
	}
	followerSrv := httptest.NewServer(crowdml.NewHTTPHandler(followerHub, ""))
	defer followerSrv.Close()
	followerClient := crowdml.NewHTTPClient(followerSrv.URL, nil).WithTask("activity")

	newReplicator := func() *crowdml.Replicator {
		r, err := crowdml.NewReplicator(crowdml.ReplicaConfig{
			Task:         followerTask,
			Feed:         feed,
			PollInterval: 2 * time.Millisecond,
			BackoffMin:   2 * time.Millisecond,
			BackoffMax:   20 * time.Millisecond,
			Logf:         t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	rep := newReplicator()
	rep.Start(ctx)

	// Phase 1: live tail through two full checkpoint+prune cycles.
	repDrive(t, leaderClient, "phone-1", token, 12)
	waitCheckpointAt(t, leaderStore, 10) // ≥2 AfterN=5 cycles completed
	waitReplicaCaughtUp(t, leader, followerTask)
	if !reflect.DeepEqual(leader.ExportState(), followerTask.Server().ExportState()) {
		t.Fatal("follower state diverged from leader after live tail")
	}

	// The follower serves the read path: a leader-registered device checks
	// out HERE, authenticated by the leader-vouch fallback, and sees the
	// replicated parameters.
	co, err := followerClient.Checkout(ctx, "phone-1", token)
	if err != nil {
		t.Fatalf("checkout from follower: %v", err)
	}
	if co.Version != leader.Iteration() {
		t.Errorf("follower checkout version %d, leader at %d", co.Version, leader.Iteration())
	}
	if _, err := followerClient.Stats(ctx); err != nil {
		t.Fatalf("stats from follower: %v", err)
	}
	// Wrong credentials must still fail even with the fallback in place.
	if _, err := followerClient.Checkout(ctx, "phone-1", "forged"); !errors.Is(err, crowdml.ErrAuth) {
		t.Errorf("forged checkout err = %v, want ErrAuth", err)
	}

	// Writes are rejected with the leader hint.
	resp, err := http.Post(followerSrv.URL+"/v1/tasks/activity/checkin", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("follower checkin status = %d, want 409", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Crowdml-Leader"); got != leaderSrv.URL {
		t.Errorf("leader hint = %q, want %q", got, leaderSrv.URL)
	}

	// The follower reports healthy while tailing.
	health, err := crowdml.NewHTTPClient(followerSrv.URL, nil).Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || len(health.Tasks) != 1 || health.Tasks[0].Role != "follower" {
		t.Errorf("follower health = %+v", health)
	}

	// Phase 2: crash the follower mid-stream, push the leader through more
	// checkpoint+prune cycles so retention passes the follower's position,
	// then restart. The fresh replicator must detect the gap and
	// re-bootstrap from the leader's checkpoint.
	rep.Stop()
	atCrash := followerTask.Server().Iteration()
	repDrive(t, leaderClient, "phone-1", token, 15)
	waitCheckpointAt(t, leaderStore, atCrash+10)

	rep2 := newReplicator()
	rep2.Start(ctx)
	defer rep2.Stop()
	waitReplicaCaughtUp(t, leader, followerTask)

	ls, fs := leader.ExportState(), followerTask.Server().ExportState()
	if !reflect.DeepEqual(ls, fs) {
		t.Fatalf("follower state diverged after re-bootstrap:\nleader   %+v\nfollower %+v", ls, fs)
	}
	if ls.Iteration != 27 {
		t.Errorf("leader iteration = %d, want 27", ls.Iteration)
	}

	// And the follower still serves reads at the converged state.
	co, err = followerClient.Checkout(ctx, "phone-1", token)
	if err != nil {
		t.Fatalf("checkout after re-bootstrap: %v", err)
	}
	if co.Version != ls.Iteration {
		t.Errorf("post-recovery checkout version %d, want %d", co.Version, ls.Iteration)
	}
}
