// Package crowdml is a Go implementation of Crowd-ML, the
// privacy-preserving machine-learning framework for crowds of smart
// devices of Hamm, Champion, Chen, Belkin and Xuan (ICDCS 2015,
// arXiv:1501.02484).
//
// Crowd-ML learns a shared classifier or predictor from data that never
// leaves the participating devices unsanitized: each device buffers its own
// sensor samples, computes a minibatch-averaged gradient locally, adds
// calibrated Laplace noise (local ε-differential privacy), and checks the
// noisy gradient in to a lightweight server that runs asynchronous
// stochastic gradient descent.
//
// # Architecture
//
//	Server  — Algorithm 2: authenticated checkout/checkin, SGD update
//	          w ← Π_W[w − η(t)·ĝ], progress counters, stopping criteria.
//	Device  — Algorithm 1: sample buffering (minibatch b, cap B), gradient
//	          computation, local sanitization, check-in with retry.
//	Privacy — Eq. (10) gradient perturbation, Eqs. (11)–(12) count
//	          sanitization, ε = ε_g + ε_e + C·ε_yk composition.
//	Models  — multiclass logistic regression (Table I), linear SVM,
//	          ridge regression — anything with a bounded-sensitivity
//	          (sub)gradient fits the framework.
//
// # Quick start
//
//	m := crowdml.NewLogisticRegression(3, 64)
//	server, _ := crowdml.NewServer(crowdml.ServerConfig{
//		Model:   m,
//		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 10}, 0),
//	})
//	token, _ := server.RegisterDevice("phone-1")
//	device, _ := crowdml.NewDevice(crowdml.DeviceConfig{
//		ID: "phone-1", Token: token, Model: m,
//		Transport: crowdml.NewLoopback(server),
//		Minibatch: 1,
//		Budget:    crowdml.Budget{Gradient: crowdml.FromInv(0.1)},
//	})
//	_ = device.AddSample(ctx, crowdml.Sample{X: features, Y: label})
//
// See examples/ for runnable programs (quickstart, activity recognition,
// a digit-recognition simulation study, and a real HTTP cluster), and
// cmd/crowdml-bench for the harness that regenerates every figure of the
// paper's evaluation.
package crowdml
