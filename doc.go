// Package crowdml is a Go implementation of Crowd-ML, the
// privacy-preserving machine-learning framework for crowds of smart
// devices of Hamm, Champion, Chen, Belkin and Xuan (ICDCS 2015,
// arXiv:1501.02484).
//
// Crowd-ML learns a shared classifier or predictor from data that never
// leaves the participating devices unsanitized: each device buffers its own
// sensor samples, computes a minibatch-averaged gradient locally, adds
// calibrated Laplace noise (local ε-differential privacy), and checks the
// noisy gradient in to a lightweight server that runs asynchronous
// stochastic gradient descent.
//
// # The v1 API: a context-first, multi-task Hub
//
// The public surface is organized around two ideas:
//
// First, one server process hosts many learning tasks. The paper's Web
// portal (Section V-A) lists multiple crowd-learning tasks that devices
// browse and join; Hub is that registry. Each task is an independent
// Server (Algorithm 2 instance) addressed by a stable ID, backed by a
// sharded task registry so concurrent checkins to different tasks never
// contend on one lock.
//
// Second, every method that does I/O or can block takes a
// context.Context as its first parameter and returns an error last —
// Server.Checkout/Checkin/RegisterDevice, Device.AddSample/Flush/Run,
// Transport implementations, and FileStore persistence all honor
// cancellation and deadlines.
//
// # Concurrency
//
// The server hot path is built for read-mostly traffic at portal scale
// (Section IV-B1: devices do the heavy lifting; the server's update is
// O(C·D)):
//
//   - Checkout and the statistics endpoints are lock-free: parameters are
//     served from an immutable copy-on-write snapshot behind an atomic
//     pointer, crowd totals are atomic counters, and device credentials
//     live in a hash-striped registry. Readers never wait on writers.
//   - Checkins go through a batched applier: concurrent callers enqueue
//     their sanitized deltas into a bounded queue and a batch leader
//     applies up to ServerConfig.CheckinBatchSize of them under a single
//     parameter-lock acquisition. Algorithm 2 semantics are preserved
//     delta by delta (per-checkin iteration number, η(t) step, staleness
//     accounting, ρ-stop evaluation); Checkin stays synchronous.
//   - ServerConfig.OnCheckin runs OUTSIDE the parameter critical section,
//     invoked by the batch leader sequentially in iteration order after
//     the updates are applied — journaling never extends the lock hold
//     or blocks reads (later checkins queue behind a slow hook).
//
// # Durability and recovery
//
// Persistence is a pluggable Store (the MySQL role in the paper's
// prototype): atomic checkpoints of the learning state plus a
// segmented, append-only write-ahead checkin journal. Two
// implementations ship — FileStore (a directory, flock-guarded) and
// MemStore (in-memory, for tests and benchmarks) — and both pass one
// shared conformance suite. Durability is hub-managed:
//
//	st, _ := crowdml.NewFileStore("/var/lib/crowdml/activity")
//	task, _ := hub.CreateTask(ctx, "activity", cfg,
//	    crowdml.WithStore(st),
//	    crowdml.WithCheckpointPolicy(crowdml.CheckpointPolicy{
//	        Every: time.Minute, AfterN: 1024,
//	    }),
//	    crowdml.WithSyncPolicy(crowdml.SyncBatch))
//	...
//	hub.Close(ctx) // final snapshot + journal close, every task
//
// Every applied checkin is journaled with its full sanitized content
// (gradient, counters, echoed checkout version) before the Checkin call
// returns, so recovery — load the latest checkpoint, then Server.Replay
// the journal tail — reconstructs the exact pre-crash iteration counter,
// parameters and totals: no acknowledged checkin is ever lost. Exact
// parameters hold for updaters that are pure functions of (w, ĝ, t),
// like the paper's SGD schedules, AND for stateful updaters
// implementing StateExporter (AdaGrad, Momentum): their internal state
// rides in every checkpoint and is handed back on restore. After a
// restart, OpenHub (or Hub.Restore) rebuilds every persisted task from
// a StoreRoot.
//
// The journal is segmented. After each successful snapshot, the
// asynchronous per-task checkpointer rotates the journal: the live
// segment is flushed, fsynced and sealed, and appends continue in a
// fresh one. Reads are streaming: Store.OpenCursor(ctx, afterIteration)
// returns a JournalCursor whose Next hands back one decoded entry at a
// time (io.EOF ends the stream), starting at the trailing segments a
// checkpoint at afterIteration does not cover — so restart TIME is
// bounded by checkpoint cadence instead of lifetime checkin volume, and
// restore/audit MEMORY is bounded by one entry instead of journal
// length (Server.Replay pulls the cursor record by record). Sealed
// segments are never rewritten; by default (KeepAll) they accumulate as
// the task's audit trail, and WithRetention automates the alternative:
// PruneCovered deletes — or ArchiveCovered(dir) moves aside — sealed
// segments the latest checkpoint fully covers, applied by the
// checkpointer only after a successful snapshot-and-rotate cycle, never
// to the live segment, so no policy can cost an acknowledged checkin.
// The hot path is untouched: journal appends, group-commit syncs,
// rotations and retention all run on the batch leader or the
// checkpointer, outside the parameter lock.
//
// SyncPolicy picks the crash model. SyncNone (default) hands each entry
// to the OS per append: acknowledged checkins survive a crash of the
// server process, but machine-level power loss can lose the newest
// entries. SyncBatch is group-commit fsync: the batch leader fsyncs
// once per applied batch, after the batch's appends and before any of
// its acknowledgments — power-loss durability at a cost amortized over
// the batch. SyncEvery fsyncs per append. See docs/OPERATIONS.md for
// tuning guidance.
//
// The ordering contract, per applied checkin at iteration t of a
// durable task: (1) the delta is applied in memory; (2) the hub appends
// t's journal record; (3) the user's OnCheckin hook for t runs — it can
// rely on t's record being written; (4) once the whole batch's hooks
// have run, the batch's single group-commit point (OnBatchCommit —
// under SyncBatch, the fsync); (5) the originating Checkin returns.
// Rotation never reorders any of this: it only decides which segment
// file step (2) appends to. The converse edge is at-least-once: a crash
// after the journal append but before the device saw the acknowledgment
// replays the checkin on recovery, and a device that retries it
// contributes that minibatch twice — the same semantics as a
// network-level retry, which asynchronous SGD absorbs.
//
// A LIVE segment whose final record is torn by a crash mid-append is
// repaired on reopen (the record was never durable, so it was never
// acknowledged); a cursor surfaces the same case as ErrJournalTruncated
// in io.EOF's place, after yielding every valid entry. Sealed segments
// are fsynced at rotation and cannot be crash-torn, so damage there is
// refused rather than repaired. A second process cannot reach either
// state: FileStore.OpenJournal holds an advisory lock on the store
// directory until Close (ErrStoreLocked) — flock on unix, LockFileEx on
// Windows — and the kernel releases a dead holder's lock automatically. If a journal append or sync FAILS
// (disk full, I/O error), the task fail-stops: it stops accepting
// checkins — bounding the at-risk window to one batch — no later append
// is attempted (a success behind the hole would break replay
// contiguity), and Hub.Close reports the failure; its final checkpoint,
// if it succeeds, still captures the full in-memory state.
//
// # Replication
//
// The write-ahead journal doubles as a replication feed: the HTTP
// handler streams any stored task's journal as chunked JSONL
// (GET /v1/tasks/{id}/journal?after=N, read through a cursor so the
// leader holds one entry in memory per open feed) plus its latest
// checkpoint, and a follower process — a task created with AsReplicaOf
// plus a Replicator driving it — bootstraps from the checkpoint and
// tails the feed, applying each entry through the same deterministic
// Server.Replay crash recovery uses. Followers serve the read path
// (checkout, stats) bit-exactly at the replicated iteration, reject
// writes with ErrReadOnlyReplica (HTTP 409 + an X-Crowdml-Leader
// hint), vouch unknown device credentials against the leader via
// ServerConfig.AuthFallback (credentials never ride in the WAL), and
// recover from falling behind leader retention by re-bootstrapping.
// GET /v1/healthz reports each task's replica state and lag. See
// docs/REPLICATION.md.
//
// # Sharding
//
// Replication scales reads; the sharded leader tier scales writes. A
// logical task created with NewShardedTask(..., WithShards(n)) is
// partitioned across n member leader tasks ("id.shard-K", each an
// ordinary durable task — WAL, checkpoints, retention and followers
// apply per shard unchanged) by stable versioned device-ID hashing.
// Register and checkin are proxied to the device's owning shard;
// checkout and stats serve a merged view — member parameter vectors
// averaged weighted by shard checkin counts, raw crowd counters summed
// so the Eq. (14) estimates compose exactly — rebuilt on a merge
// interval and published through an atomic pointer, so reads stay
// lock-free and the merged iteration is monotone. The HTTP handler
// routes the existing /v1/tasks/{id}/... paths through the tier, folds
// members out of listings and healthz (one "sharded" row with
// per-shard sub-rows), and 409s from follower-role members carry the
// owning shard's leader hint (LeaderHintError, LeaderHint). See
// docs/SHARDING.md.
//
// # Architecture
//
//	Hub     — named-task registry (sharded); CreateTask/Task/CloseTask,
//	          a default task for the legacy single-task endpoints;
//	          hub-managed durability (WithStore, OpenHub/Restore, Close).
//	Store   — pluggable persistence: checkpoints + segmented write-ahead
//	          checkin journal (rotation, group-commit fsync, streaming
//	          cursor reads, automated retention, audit trail); FileStore
//	          and MemStore, grouped under a StoreRoot.
//	Server  — Algorithm 2: authenticated checkout/checkin, SGD update
//	          w ← Π_W[w − η(t)·ĝ], progress counters, stopping criteria;
//	          lock-free checkout/stats, batched checkin application.
//	Device  — Algorithm 1: sample buffering (minibatch b, cap B), gradient
//	          computation, local sanitization, check-in with retry.
//	Privacy — Eq. (10) gradient perturbation, Eqs. (11)–(12) count
//	          sanitization, ε = ε_g + ε_e + C·ε_yk composition.
//	Models  — multiclass logistic regression (Table I), linear SVM,
//	          ridge regression — anything with a bounded-sensitivity
//	          (sub)gradient fits the framework.
//	Replica — the follower runtime: Replicator bootstraps a read-only
//	          task from the leader's checkpoint and tails its journal
//	          feed with jittered-backoff reconnects and gap-driven
//	          re-bootstrap.
//	Shard   — the partitioned leader tier: a versioned device-hash
//	          ShardMap and a routing/merging Group fronting n member
//	          tasks behind one logical task ID (NewShardedTask).
//	HTTP    — task-scoped routes /v1/tasks/{id}/checkout|checkin|stats|
//	          register|journal|checkpoint plus a /v1/tasks listing and
//	          /v1/healthz; the legacy /v1/* paths alias the hub's
//	          default task. NewPortalIndex serves the human-facing
//	          multi-task portal.
//
// # Quick start
//
//	ctx := context.Background()
//	m := crowdml.NewLogisticRegression(3, 64)
//	hub := crowdml.NewHub()
//	task, _ := hub.CreateTask(ctx, "activity", crowdml.ServerConfig{
//		Model:   m,
//		Updater: crowdml.NewSGD(crowdml.InvSqrt{C: 10}, 0),
//	})
//	token, _ := task.Server().RegisterDevice(ctx, "phone-1")
//	device, _ := crowdml.NewDevice(crowdml.DeviceConfig{
//		ID: "phone-1", Token: token, Model: m,
//		Transport: crowdml.NewLoopback(task.Server()),
//		Minibatch: 1,
//		Budget:    crowdml.Budget{Gradient: crowdml.FromInv(0.1)},
//	})
//	_ = device.AddSample(ctx, crowdml.Sample{X: features, Y: label})
//
// Over HTTP, serve the hub with NewHTTPHandler and point devices at it
// with NewHTTPClient(baseURL, nil).WithTask("activity"); see README.md
// for the v0 → v1 migration table.
//
// See examples/ for runnable programs (quickstart, activity recognition,
// a digit-recognition simulation study, and a multi-task HTTP cluster),
// the Example functions in this package's test files for the durability
// lifecycle, and cmd/crowdml-bench for the harness that regenerates
// every figure of the paper's evaluation plus an HTTP load bench.
// docs/ARCHITECTURE.md maps the layers and the durability state
// machine; docs/OPERATIONS.md is the operator's tuning guide.
package crowdml
